//! Workspace symbol index and conservative call-graph resolution.
//!
//! Every file's [`crate::parse::FileItems`] are merged into one flat
//! function table with name- and `(owner, name)`-keyed lookup maps, and
//! every call site is resolved against it. Resolution is deliberately
//! **conservative**, but *typed* where the source gives us types for free:
//!
//! * a method call `.name(…)` resolves through its receiver's candidate
//!   types: `self.name(…)` links the enclosing impl's method; `x.name(…)`
//!   links `T::name` for every type `T` that a caller parameter named `x`
//!   or a workspace struct field named `x` declares. Candidate types that
//!   are trait names expand to every `impl Trait for T` method (dynamic
//!   dispatch stays over-approximated). Every method call additionally
//!   stays an *open edge*, because the receiver may be a `std` type
//!   (`Vec::push` and `SrptSet::push` are indistinguishable at a `.push(`
//!   site) or a local whose type the lexical analyzer cannot see;
//! * a call that resolves to nothing in the workspace is an explicit open
//!   edge carrying its (qualified) name. Rules match sink names against
//!   open edges, so leaving the workspace never silently drops a
//!   forbidden call — it is either followed or named.
//!
//! Receiver typing exists because the earlier name-only scheme (`.len(`
//! links every workspace `len`) manufactured false bridges between
//! unrelated crates — `CalendarQueue::settle → TrapStreamSource::len`,
//! `f64::round → FleetSession::round` — flooding the reachability rules.
//! Residual false edges from shared field/param names are accepted: they
//! only make reachability *larger*, never smaller, which is the safe
//! direction for deny-by-default rules. Sink matching at call sites stays
//! name-based, so a forbidden `.push(`/`.unwrap()` is caught even when it
//! resolves to nothing.

use std::collections::BTreeMap;

use crate::parse::{parse_items, CallKind, CallSite, FnDef, StructDef};
use crate::source::SourceFile;

/// One function in the workspace index.
#[derive(Debug)]
pub struct FnInfo {
    /// Index of the defining file in the workspace's file list.
    pub file: usize,
    /// The parsed definition (owner, body span, call sites, …).
    pub def: FnDef,
}

impl FnInfo {
    /// `Owner::name` or plain `name` — the display form used in
    /// diagnostics and `--explain` paths.
    pub fn qual_name(&self) -> String {
        match &self.def.owner {
            Some(o) => format!("{o}::{}", self.def.name),
            None => self.def.name.clone(),
        }
    }
}

/// One struct/enum in the workspace index.
#[derive(Debug)]
pub struct StructInfo {
    /// Index of the defining file.
    pub file: usize,
    /// The parsed definition.
    pub def: StructDef,
}

/// A call site with its workspace resolution.
#[derive(Debug)]
pub struct ResolvedCall {
    /// The syntactic site.
    pub site: CallSite,
    /// Workspace functions this call may invoke (empty if none matched).
    pub targets: Vec<usize>,
    /// Whether the call may also leave the workspace (method calls
    /// always; unresolved plain/qualified calls and macros too).
    pub open: bool,
}

/// The whole-workspace symbol index + resolved call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All functions (test functions included, flagged via `def.is_test`).
    pub fns: Vec<FnInfo>,
    /// All structs/enums.
    pub structs: Vec<StructInfo>,
    /// Non-test functions by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Non-test functions by `(owner, name)`.
    pub by_owner_name: BTreeMap<(String, String), Vec<usize>>,
    /// Non-test structs/enums by name.
    pub struct_ids: BTreeMap<String, Vec<usize>>,
    /// Trait name → self types with an `impl Trait for Type` block.
    pub trait_impls: BTreeMap<String, Vec<String>>,
    /// Field name → type identifiers it is declared with anywhere in the
    /// workspace (non-test structs only). Gives `x.name(…)` receiver
    /// candidates when `x` is a struct field.
    pub field_types: BTreeMap<String, Vec<String>>,
    /// Per-function resolved call sites (parallel to `fns`).
    pub resolved: Vec<Vec<ResolvedCall>>,
    /// Per-function deduplicated adjacency (parallel to `fns`).
    pub edges: Vec<Vec<usize>>,
    /// Names of calls that resolved to nothing in the workspace, with
    /// occurrence counts — the open-edge report.
    pub unresolved_names: BTreeMap<String, usize>,
}

impl CallGraph {
    /// Builds the index and resolves every call site.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut g = CallGraph::default();
        for (fi, file) in files.iter().enumerate() {
            let items = parse_items(file);
            for imp in &items.impls {
                if let Some(tr) = &imp.trait_name {
                    let entry = g.trait_impls.entry(tr.clone()).or_default();
                    if !entry.contains(&imp.self_ty) {
                        entry.push(imp.self_ty.clone());
                    }
                }
            }
            for s in items.structs {
                let id = g.structs.len();
                if !s.is_test {
                    g.struct_ids.entry(s.name.clone()).or_default().push(id);
                    if !s.is_enum {
                        for field in &s.fields {
                            let entry = g.field_types.entry(field.name.clone()).or_default();
                            for ty in &field.ty_idents {
                                if !entry.contains(ty) {
                                    entry.push(ty.clone());
                                }
                            }
                        }
                    }
                }
                g.structs.push(StructInfo { file: fi, def: s });
            }
            for f in items.fns {
                let id = g.fns.len();
                if !f.is_test {
                    g.by_name.entry(f.name.clone()).or_default().push(id);
                    if let Some(owner) = &f.owner {
                        g.by_owner_name
                            .entry((owner.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
                g.fns.push(FnInfo { file: fi, def: f });
            }
        }
        g.resolve_all();
        g
    }

    fn resolve_all(&mut self) {
        let mut resolved = Vec::with_capacity(self.fns.len());
        let mut edges = Vec::with_capacity(self.fns.len());
        for f in &self.fns {
            let mut calls = Vec::with_capacity(f.def.calls.len());
            let mut adj: Vec<usize> = Vec::new();
            for site in &f.def.calls {
                let rc = self.resolve_one(f, site);
                if !f.def.is_test {
                    for &t in &rc.targets {
                        if !adj.contains(&t) {
                            adj.push(t);
                        }
                    }
                    if rc.open && rc.targets.is_empty() && !matches!(site.kind, CallKind::Index) {
                        *self
                            .unresolved_names
                            .entry(site.qualified_name())
                            .or_insert(0) += 1;
                    }
                }
                calls.push(rc);
            }
            resolved.push(calls);
            edges.push(adj);
        }
        self.resolved = resolved;
        self.edges = edges;
    }

    fn resolve_one(&self, caller: &FnInfo, site: &CallSite) -> ResolvedCall {
        let (targets, open) = match &site.kind {
            CallKind::Index => (Vec::new(), false),
            CallKind::Macro(_) => (Vec::new(), true),
            CallKind::Method(name) => {
                // Resolve through the receiver's candidate types; always
                // open, since the receiver may be a std type or a local
                // whose type is not lexically visible.
                let mut candidates: Vec<String> = Vec::new();
                match site.receiver.as_deref() {
                    Some("self") | Some("Self") => {
                        if let Some(owner) = &caller.def.owner {
                            candidates.push(owner.clone());
                        }
                    }
                    Some(recv) => {
                        // A caller parameter of that name contributes its
                        // declared type idents, and so does a field of the
                        // caller's own impl type (the common `self.x.m()`
                        // shape). Only when neither names the receiver do
                        // we fall back to the workspace-wide union of
                        // same-named struct fields — precise local
                        // knowledge beats the global over-approximation.
                        for (pname, tys) in &caller.def.params {
                            if pname == recv {
                                candidates.extend(tys.iter().cloned());
                            }
                        }
                        if let Some(owner) = &caller.def.owner {
                            if let Some(sids) = self.struct_ids.get(owner) {
                                for &sid in sids {
                                    for f in &self.structs[sid].def.fields {
                                        if f.name == recv {
                                            candidates.extend(f.ty_idents.iter().cloned());
                                        }
                                    }
                                }
                            }
                        }
                        if candidates.is_empty() {
                            if let Some(tys) = self.field_types.get(recv) {
                                candidates.extend(tys.iter().cloned());
                            }
                        }
                    }
                    None => {}
                }
                let mut t: Vec<usize> = Vec::new();
                for ty in &candidates {
                    for id in self.owner_lookup(ty, name) {
                        if !t.contains(&id) {
                            t.push(id);
                        }
                    }
                }
                (t, true)
            }
            CallKind::Plain(name) => {
                let t = self.by_name.get(name).cloned().unwrap_or_default();
                // Unresolved uppercase-initial plain calls are tuple-struct
                // constructors / enum variants (`Some(x)`), not open edges.
                let ctor_like = name.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                let open = t.is_empty() && !ctor_like;
                (t, open)
            }
            CallKind::Qualified { head, name, .. } => self.resolve_qualified(caller, head, name),
        };
        ResolvedCall {
            site: site.clone(),
            targets,
            open,
        }
    }

    /// Methods named `name` on `owner`: the owner's own `(owner, name)`
    /// entries, plus — when `owner` is a trait — every `impl owner for T`
    /// method of that name (dynamic dispatch over-approximation).
    fn owner_lookup(&self, owner: &str, name: &str) -> Vec<usize> {
        let mut t = self
            .by_owner_name
            .get(&(owner.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default();
        if let Some(names) = self.by_name.get(name) {
            for &i in names {
                if self.fns[i].def.trait_impl.as_deref() == Some(owner) && !t.contains(&i) {
                    t.push(i);
                }
            }
        }
        t
    }

    fn resolve_qualified(&self, caller: &FnInfo, head: &str, name: &str) -> (Vec<usize>, bool) {
        match head {
            "Self" => {
                let t = match &caller.def.owner {
                    Some(owner) => self.owner_lookup(owner, name),
                    None => Vec::new(),
                };
                let open = t.is_empty();
                (t, open)
            }
            "self" | "crate" | "super" => {
                let t = self.by_name.get(name).cloned().unwrap_or_default();
                let open = t.is_empty();
                (t, open)
            }
            _ if head.chars().next().is_some_and(|c| c.is_ascii_uppercase()) => {
                // Type- or trait-qualified. If the head is a workspace
                // type/trait, its methods; otherwise (std / primitive
                // shorthand like `Vec`, `Box`) an open edge.
                let t = self.owner_lookup(head, name);
                let open = t.is_empty();
                (t, open)
            }
            _ => {
                // Module/crate path: free functions of that name.
                let t = self
                    .by_name
                    .get(name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&i| self.fns[i].def.owner.is_none())
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                let open = t.is_empty();
                (t, open)
            }
        }
    }

    /// Ids of non-test functions matching `symbol`, which is either a
    /// bare `name` or a qualified `Owner::name`.
    pub fn lookup(&self, symbol: &str) -> Vec<usize> {
        if let Some((owner, name)) = symbol.split_once("::") {
            self.by_owner_name
                .get(&(owner.to_string(), name.to_string()))
                .cloned()
                .unwrap_or_default()
        } else {
            self.by_name.get(symbol).cloned().unwrap_or_default()
        }
    }

    /// Whether `ty` has an `impl Trait for ty` block for the given trait.
    pub fn implements(&self, ty: &str, trait_name: &str) -> bool {
        self.trait_impls
            .get(trait_name)
            .is_some_and(|tys| tys.iter().any(|t| t == ty))
    }

    /// All non-test struct/enum defs with the given name.
    pub fn structs_named(&self, name: &str) -> Vec<&StructInfo> {
        self.struct_ids
            .get(name)
            .map(|ids| ids.iter().map(|&i| &self.structs[i]).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(srcs: &[(&str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, text)| SourceFile::new(*rel, *text))
            .collect();
        CallGraph::build(&files)
    }

    #[test]
    fn resolves_plain_and_qualified_calls() {
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "fn a() { b(); Widget::make(); }\nfn b() {}\n\
             struct Widget;\nimpl Widget { fn make() {} }\n",
        )]);
        let a = g.lookup("a")[0];
        let b = g.lookup("b")[0];
        let make = g.lookup("Widget::make")[0];
        assert!(g.edges[a].contains(&b));
        assert!(g.edges[a].contains(&make));
        // Both calls resolved — nothing left the workspace.
        assert!(g.resolved[a].iter().all(|c| !c.targets.is_empty()));
    }

    #[test]
    fn method_calls_resolve_through_receiver_types_and_stay_open() {
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "struct A; impl A { fn push(&mut self) {} }\n\
             struct B; impl B { fn push(&mut self) {} }\n\
             struct Holder { a: A }\n\
             impl Holder { fn go(&mut self) { self.a.push(); } }\n\
             fn f(v: &mut A) { v.push(); }\n\
             fn h(v: &mut Vec<u32>) { v.push(1); }\n",
        )]);
        // Param-typed receiver: links A::push only, not B::push.
        let f = g.lookup("f")[0];
        let a_push = g.lookup("A::push")[0];
        assert_eq!(g.resolved[f][0].targets, vec![a_push]);
        assert!(g.resolved[f][0].open, "receiver could still be a std type");
        // Field-typed receiver: `self.a.push()` has receiver ident `a`,
        // whose workspace field type is A.
        let go = g.lookup("Holder::go")[0];
        assert_eq!(g.resolved[go][0].targets, vec![a_push]);
        // A std-typed receiver links nothing in the workspace but stays
        // an open edge a rule can still name-match.
        let h = g.lookup("h")[0];
        assert!(g.resolved[h][0].targets.is_empty());
        assert!(g.resolved[h][0].open);
    }

    #[test]
    fn self_method_calls_resolve_through_the_enclosing_impl() {
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "struct E; impl E { fn a(&mut self) { self.b(); } fn b(&mut self) {} }\n\
             struct F; impl F { fn b(&mut self) {} }\n",
        )]);
        let a = g.lookup("E::a")[0];
        let eb = g.lookup("E::b")[0];
        assert_eq!(g.resolved[a][0].targets, vec![eb], "not F::b");
    }

    #[test]
    fn trait_typed_receivers_dispatch_to_every_impl() {
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "trait P { fn go(&self); }\n\
             struct X; impl P for X { fn go(&self) {} }\n\
             struct Y; impl P for Y { fn go(&self) {} }\n\
             struct Eng { policy: Box<dyn P> }\n\
             impl Eng { fn step(&self) { self.policy.go(); } }\n",
        )]);
        let step = g.lookup("Eng::step")[0];
        assert_eq!(
            g.resolved[step][0].targets.len(),
            3,
            "trait decl + both impls"
        );
    }

    #[test]
    fn unresolved_calls_become_named_open_edges() {
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "fn f() { let b = Box::new(1); mystery(); let v = vec![0]; let s = Some(1); }\n",
        )]);
        assert_eq!(g.unresolved_names.get("Box::new"), Some(&1));
        assert_eq!(g.unresolved_names.get("mystery"), Some(&1));
        assert_eq!(g.unresolved_names.get("vec!"), Some(&1));
        // `Some(…)` is a variant constructor, not an open edge.
        assert!(!g.unresolved_names.contains_key("Some"));
    }

    #[test]
    fn self_calls_resolve_through_the_enclosing_impl() {
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "struct E; impl E { fn a() { Self::b(); } fn b() {} }\n",
        )]);
        let a = g.lookup("E::a")[0];
        let b = g.lookup("E::b")[0];
        assert!(g.edges[a].contains(&b));
    }

    #[test]
    fn trait_qualified_calls_reach_every_impl() {
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "trait P { fn go(&self); }\n\
             struct X; impl P for X { fn go(&self) {} }\n\
             struct Y; impl P for Y { fn go(&self) {} }\n\
             fn f(p: &dyn P) { P::go(p); }\n",
        )]);
        let f = g.lookup("f")[0];
        // The bodiless trait declaration plus both impls.
        assert_eq!(g.resolved[f][0].targets.len(), 3);
        assert!(g.implements("X", "P"));
        assert!(g.implements("Y", "P"));
        assert!(!g.implements("X", "Q"));
    }

    #[test]
    fn test_functions_are_indexed_but_never_targets() {
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "fn f() { helper(); }\n\
             #[cfg(test)]\nmod tests { fn helper() {} }\n",
        )]);
        let f = g.lookup("f")[0];
        assert!(g.resolved[f][0].targets.is_empty());
        assert_eq!(g.unresolved_names.get("helper"), Some(&1));
    }

    #[test]
    fn cross_file_resolution() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn entry() { shared_util(); }\n"),
            ("crates/b/src/lib.rs", "pub fn shared_util() {}\n"),
        ]);
        let e = g.lookup("entry")[0];
        let s = g.lookup("shared_util")[0];
        assert!(g.edges[e].contains(&s));
        assert_eq!(g.fns[s].file, 1);
    }
}
