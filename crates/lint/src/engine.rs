//! The lint driver: loads a workspace, runs the catalog, applies waivers.

use std::path::Path;

use crate::rules::catalog;
use crate::source::{collect_rs_files, SourceFile};
use crate::Diagnostic;

/// The files under analysis.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Lexed files, in deterministic (sorted-path) order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Builds a workspace from in-memory `(relative path, text)` pairs —
    /// the unit-test entry point.
    pub fn from_memory<I, P, T>(files: I) -> Self
    where
        I: IntoIterator<Item = (P, T)>,
        P: Into<String>,
        T: Into<String>,
    {
        let mut fs: Vec<SourceFile> = files
            .into_iter()
            .map(|(p, t)| SourceFile::new(p, t))
            .collect();
        fs.sort_by(|a, b| a.rel.cmp(&b.rel));
        Self { files: fs }
    }

    /// Loads every production `.rs` file under `root` (see
    /// [`collect_rs_files`] for what is skipped), keeping only files whose
    /// relative path starts with one of `filters` (empty = keep all).
    pub fn load(root: &Path, filters: &[String]) -> std::io::Result<Self> {
        let rels = collect_rs_files(root, root)?;
        let mut files = Vec::new();
        for rel in rels {
            let rel_str = rel
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            if !filters.is_empty() && !filters.iter().any(|f| rel_str.starts_with(f.as_str())) {
                continue;
            }
            let text = std::fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::new(rel_str, text));
        }
        Ok(Self { files })
    }
}

/// A waiver that matched nothing, or is malformed — reported so stale
/// waivers can't silently rot.
#[derive(Debug, Clone)]
pub struct WaiverProblem {
    /// File the waiver sits in.
    pub path: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// What is wrong.
    pub detail: String,
}

/// Everything one lint run produces.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Unwaived violations — any entry here means a nonzero exit.
    pub violations: Vec<Diagnostic>,
    /// Diagnostics suppressed by a waiver, with the waiver's reason.
    pub waived: Vec<(Diagnostic, String)>,
    /// Malformed or unused waivers (also nonzero exit: stale waivers are
    /// how contracts erode).
    pub waiver_problems: Vec<WaiverProblem>,
    /// Number of files analyzed.
    pub files: usize,
}

impl LintOutcome {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.waiver_problems.is_empty()
    }
}

/// Runs the full rule catalog over `ws`.
pub fn run(ws: &Workspace) -> LintOutcome {
    let known_rules: Vec<&'static str> = catalog().iter().map(|r| r.id()).collect();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for rule in catalog() {
        diags.extend(rule.check(ws));
    }
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });

    let mut outcome = LintOutcome {
        files: ws.files.len(),
        ..Default::default()
    };
    // Track per-file, per-waiver usage so unused waivers surface.
    let mut used: Vec<Vec<bool>> = ws
        .files
        .iter()
        .map(|f| vec![false; f.waivers.len()])
        .collect();

    for d in diags {
        let fidx = ws.files.iter().position(|f| f.rel == d.path);
        let mut waived_by: Option<String> = None;
        if let Some(fi) = fidx {
            for (wi, w) in ws.files[fi].waivers.iter().enumerate() {
                if w.target_line == d.line && w.rules.iter().any(|r| r == d.rule) {
                    if w.reason.is_empty() {
                        // A reasonless waiver does not waive; it is
                        // reported below as a waiver problem.
                        continue;
                    }
                    used[fi][wi] = true;
                    waived_by = Some(w.reason.clone());
                    break;
                }
            }
        }
        match waived_by {
            Some(reason) => outcome.waived.push((d, reason)),
            None => outcome.violations.push(d),
        }
    }

    for (fi, file) in ws.files.iter().enumerate() {
        for (wi, w) in file.waivers.iter().enumerate() {
            if w.reason.is_empty() {
                outcome.waiver_problems.push(WaiverProblem {
                    path: file.rel.clone(),
                    line: w.line,
                    detail: format!(
                        "waiver for {} has no reason; write `// lint:allow({}) <why>`",
                        w.rules.join(", "),
                        w.rules.join(", ")
                    ),
                });
            } else if let Some(bad) = w.rules.iter().find(|r| !known_rules.contains(&r.as_str())) {
                outcome.waiver_problems.push(WaiverProblem {
                    path: file.rel.clone(),
                    line: w.line,
                    detail: format!("waiver names unknown rule `{bad}`"),
                });
            } else if !used[fi][wi] {
                outcome.waiver_problems.push(WaiverProblem {
                    path: file.rel.clone(),
                    line: w.line,
                    detail: format!(
                        "stale waiver: no {} diagnostic on line {} — remove it",
                        w.rules.join("/"),
                        w.target_line
                    ),
                });
            }
        }
    }
    outcome
}

/// Convenience: load + run in one call.
pub fn lint_root(root: &Path, filters: &[String]) -> std::io::Result<LintOutcome> {
    Ok(run(&Workspace::load(root, filters)?))
}
