//! The lint driver: loads a workspace, runs the catalog, applies waivers.

use std::cell::OnceCell;
use std::path::Path;

use crate::callgraph::CallGraph;
use crate::rules::catalog;
use crate::source::{collect_rs_files, SourceFile};
use crate::Diagnostic;

/// The files under analysis.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Lexed files, in deterministic (sorted-path) order.
    pub files: Vec<SourceFile>,
    /// Lazily built symbol index + call graph (shared by the reachability
    /// rules and `--explain`; building it twice would double lint time).
    graph: OnceCell<CallGraph>,
}

impl Workspace {
    /// Builds a workspace from in-memory `(relative path, text)` pairs —
    /// the unit-test entry point.
    pub fn from_memory<I, P, T>(files: I) -> Self
    where
        I: IntoIterator<Item = (P, T)>,
        P: Into<String>,
        T: Into<String>,
    {
        let mut fs: Vec<SourceFile> = files
            .into_iter()
            .map(|(p, t)| SourceFile::new(p, t))
            .collect();
        fs.sort_by(|a, b| a.rel.cmp(&b.rel));
        Self {
            files: fs,
            graph: OnceCell::new(),
        }
    }

    /// Loads every production `.rs` file under `root` (see
    /// [`collect_rs_files`] for what is skipped), keeping only files whose
    /// relative path starts with one of `filters` (empty = keep all).
    pub fn load(root: &Path, filters: &[String]) -> std::io::Result<Self> {
        let rels = collect_rs_files(root, root)?;
        let mut files = Vec::new();
        for rel in rels {
            let rel_str = rel
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            if !filters.is_empty() && !filters.iter().any(|f| rel_str.starts_with(f.as_str())) {
                continue;
            }
            let text = std::fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::new(rel_str, text));
        }
        Ok(Self {
            files,
            graph: OnceCell::new(),
        })
    }

    /// The workspace call graph, built on first use.
    pub fn graph(&self) -> &CallGraph {
        self.graph.get_or_init(|| CallGraph::build(&self.files))
    }
}

/// A waiver that matched nothing, or is malformed — reported so stale
/// waivers can't silently rot.
#[derive(Debug, Clone)]
pub struct WaiverProblem {
    /// File the waiver sits in.
    pub path: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// What is wrong.
    pub detail: String,
}

/// Everything one lint run produces.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Unwaived violations — any entry here means a nonzero exit.
    pub violations: Vec<Diagnostic>,
    /// Diagnostics suppressed by a waiver, with the waiver's reason.
    pub waived: Vec<(Diagnostic, String)>,
    /// Malformed or unused waivers (also nonzero exit: stale waivers are
    /// how contracts erode).
    pub waiver_problems: Vec<WaiverProblem>,
    /// Number of files analyzed.
    pub files: usize,
    /// Call sites the graph resolver could not link to any workspace
    /// function (they left the workspace). Reported — never silently
    /// dropped — so a reader can see how much of the graph is open.
    pub open_edges: usize,
    /// Fatal run errors (I/O, unreadable files). Any entry means exit 2;
    /// reported structurally so `--format json`/`sarif` output is
    /// distinguishable from a clean empty run.
    pub errors: Vec<String>,
}

impl LintOutcome {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.waiver_problems.is_empty() && self.errors.is_empty()
    }

    /// An outcome that carries only fatal errors (the exit-2 path): no
    /// files were analyzed, nothing was checked.
    pub fn from_errors(errors: Vec<String>) -> Self {
        Self {
            errors,
            ..Self::default()
        }
    }
}

/// Runs the full rule catalog over `ws`.
pub fn run(ws: &Workspace) -> LintOutcome {
    let known_rules: Vec<&'static str> = catalog().iter().map(|r| r.id()).collect();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for rule in catalog() {
        diags.extend(rule.check(ws));
    }
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });

    let mut outcome = LintOutcome {
        files: ws.files.len(),
        open_edges: ws.graph().unresolved_names.values().sum(),
        ..Default::default()
    };
    // Track per-file, per-waiver usage so unused waivers surface.
    let mut used: Vec<Vec<bool>> = ws
        .files
        .iter()
        .map(|f| vec![false; f.waivers.len()])
        .collect();

    for d in diags {
        let fidx = ws.files.iter().position(|f| f.rel == d.path);
        let mut waived_by: Option<String> = None;
        if let Some(fi) = fidx {
            for (wi, w) in ws.files[fi].waivers.iter().enumerate() {
                if w.target_line == d.line && w.rules.iter().any(|r| r == d.rule) {
                    if w.reason.is_empty() {
                        // A reasonless waiver does not waive; it is
                        // reported below as a waiver problem.
                        continue;
                    }
                    used[fi][wi] = true;
                    waived_by = Some(w.reason.clone());
                    break;
                }
            }
        }
        match waived_by {
            Some(reason) => outcome.waived.push((d, reason)),
            None => outcome.violations.push(d),
        }
    }

    for (fi, file) in ws.files.iter().enumerate() {
        for (wi, w) in file.waivers.iter().enumerate() {
            if w.reason.is_empty() {
                outcome.waiver_problems.push(WaiverProblem {
                    path: file.rel.clone(),
                    line: w.line,
                    detail: format!(
                        "waiver for {} has no reason; write `// lint:allow({}) <why>`",
                        w.rules.join(", "),
                        w.rules.join(", ")
                    ),
                });
            } else if let Some(bad) = w.rules.iter().find(|r| !known_rules.contains(&r.as_str())) {
                outcome.waiver_problems.push(WaiverProblem {
                    path: file.rel.clone(),
                    line: w.line,
                    detail: format!("waiver names unknown rule `{bad}`"),
                });
            } else if !used[fi][wi] {
                outcome.waiver_problems.push(WaiverProblem {
                    path: file.rel.clone(),
                    line: w.line,
                    detail: format!(
                        "stale waiver: no {} diagnostic on line {} — remove it",
                        w.rules.join("/"),
                        w.target_line
                    ),
                });
            }
        }
    }
    outcome
}

/// Convenience: load + run in one call.
pub fn lint_root(root: &Path, filters: &[String]) -> std::io::Result<LintOutcome> {
    Ok(run(&Workspace::load(root, filters)?))
}

/// `--explain` support: renders the call-path evidence behind a
/// reachability rule for one symbol.
///
/// * `L007` / `L008`: `symbol` is a function (`name` or `Owner::name`);
///   prints the shortest root → symbol call path per match, or states
///   unreachability.
/// * `L009`: `symbol` is a struct name; prints per-field render/parse
///   coverage.
///
/// Errors (unknown rule, unknown symbol) are returned as `Err` so the CLI
/// can exit 2.
pub fn explain(ws: &Workspace, rule: &str, symbol: &str) -> Result<String, String> {
    use crate::reach::Reach;
    use crate::rules::{event_loop, snapshot_complete, taint};

    let graph = ws.graph();
    let rule = rule.to_ascii_uppercase();
    match rule.as_str() {
        "L007" | "L008" => {
            let ids = graph.lookup(symbol);
            if ids.is_empty() {
                return Err(format!(
                    "unknown symbol `{symbol}` (use `name` or `Owner::name` of a workspace fn)"
                ));
            }
            let (roots, label) = if rule == "L007" {
                (event_loop::event_loop_roots(graph), "event-loop root")
            } else {
                (taint::sim_roots(ws), "simulation-path root")
            };
            let reach = Reach::compute(graph, &roots, |id| {
                rule == "L007" && event_loop::is_boundary(graph, id)
            });
            let mut s = String::new();
            for id in ids {
                let f = &graph.fns[id];
                let at = format!("{} ({})", f.qual_name(), ws.files[f.file].rel);
                match reach.render_path(graph, id) {
                    Some(path) => {
                        s.push_str(&format!(
                            "{rule}: {at}\n  reachable from {label} via:\n  {path}\n"
                        ));
                    }
                    None => {
                        s.push_str(&format!("{rule}: {at}\n  not reachable from any {label}\n"))
                    }
                }
            }
            Ok(s)
        }
        "L009" => {
            let Some((render, parse)) = snapshot_complete::coverage(ws) else {
                return Err(
                    "workspace has no parsched-snap/v1 codec (no Engine::snapshot / \
                            Snapshot::to_value roots)"
                        .to_string(),
                );
            };
            let structs = graph.structs_named(symbol);
            if structs.is_empty() {
                return Err(format!("unknown struct `{symbol}`"));
            }
            let mut s = String::new();
            for info in structs {
                s.push_str(&format!(
                    "L009: {} ({})\n  field coverage (render / parse):\n",
                    symbol, ws.files[info.file].rel
                ));
                for field in &info.def.fields {
                    s.push_str(&format!(
                        "  {:24} {} / {}\n",
                        field.name,
                        if render.contains(&field.name) {
                            "yes"
                        } else {
                            "MISSING"
                        },
                        if parse.contains(&field.name) {
                            "yes"
                        } else {
                            "MISSING"
                        },
                    ));
                }
            }
            Ok(s)
        }
        other => Err(format!(
            "`--explain` covers the reachability rules L007/L008/L009; `{other}` is token-local \
             (its diagnostic already points at the site)"
        )),
    }
}
