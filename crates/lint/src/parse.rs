//! A lightweight item parser on top of the span-tracking lexer.
//!
//! Extracts just enough structure from the token stream for whole-workspace
//! reasoning: `mod`/`impl`/`trait` nesting, `fn` items (with their owner
//! type, receiver mutability, and body span), `struct`/`enum` shapes with
//! named fields, and every call-shaped expression inside function bodies
//! (plain calls, method calls, `Path::calls`, macro invocations, and
//! bracket indexing). It does **not** build an AST or resolve types — the
//! same offline, conservative discipline as the lexer. Resolution lives in
//! [`crate::callgraph`]; what cannot be resolved there stays an explicit
//! *open edge* rather than being dropped.
//!
//! Like the lexer, the parser is total: any byte sequence produces *some*
//! item list (possibly empty) without panicking — the robustness property
//! suite under `crates/lint/tests/` locks this in alongside the jsonlite
//! fuzz suite it mirrors.

use crate::lex::TokenKind;
use crate::source::SourceFile;

/// Words that can precede `(` without being a call.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "let", "fn", "impl", "struct", "enum", "use",
    "mod", "pub", "where", "unsafe", "as", "in", "move", "ref", "mut", "else", "break", "continue",
    "super", "crate", "dyn", "box", "type", "trait", "const", "static", "extern", "yield",
];

/// One call-shaped expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` with no path or receiver.
    Plain(String),
    /// `.name(…)` — receiver type unknown to a lexical analyzer, so the
    /// resolver links every same-named workspace method *and* keeps the
    /// edge open.
    Method(String),
    /// `Head::name(…)`; `head` is the path segment immediately before the
    /// callee, `root` the first segment of the whole path.
    Qualified {
        /// Segment immediately before the callee (`Vec` in `Vec::new`).
        head: String,
        /// First segment of the path (`std` in `std::mem::take`).
        root: String,
        /// The callee name.
        name: String,
    },
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro(String),
    /// `expr[…]` indexing (panics on out-of-bounds).
    Index,
}

impl CallKind {
    /// The name rules match sinks against (macros carry a trailing `!`,
    /// qualified calls also expose `Head::name` via
    /// [`CallSite::qualified_name`]).
    pub fn name(&self) -> String {
        match self {
            CallKind::Plain(n) | CallKind::Method(n) => n.clone(),
            CallKind::Qualified { name, .. } => name.clone(),
            CallKind::Macro(n) => format!("{n}!"),
            CallKind::Index => "[]".to_string(),
        }
    }
}

/// A call expression, anchored at its callee token.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name (for `Index`, of the `[`).
    pub tok: usize,
    /// Shape of the call.
    pub kind: CallKind,
    /// For method/field chains: the identifier immediately before the
    /// final `.` (`completed` in `self.completed.push(x)`), if any.
    pub receiver: Option<String>,
}

impl CallSite {
    /// `Head::name` for qualified calls (`Vec::with_capacity`), else the
    /// plain name.
    pub fn qualified_name(&self) -> String {
        match &self.kind {
            CallKind::Qualified { head, name, .. } => format!("{head}::{name}"),
            other => other.name(),
        }
    }
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` self-type or `trait` name, if any.
    pub owner: Option<String>,
    /// For `impl Trait for Type` methods, the trait name.
    pub trait_impl: Option<String>,
    /// Enclosing in-file module path.
    pub module: Vec<String>,
    /// Token index of the name.
    pub name_tok: usize,
    /// Token range `[start, end)` of the body including braces; `None` for
    /// bodiless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the receiver is `&mut self` / `mut self`.
    pub mut_self: bool,
    /// Parameters as `(name, type identifiers)` — the resolver uses the
    /// type idents to give method calls on a parameter a receiver type.
    pub params: Vec<(String, Vec<String>)>,
    /// Whether the item sits inside a `#[cfg(test)]` module.
    pub is_test: bool,
    /// Call-shaped expressions inside the body.
    pub calls: Vec<CallSite>,
}

/// One named field (or enum variant) with the head identifiers of its type.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field (or variant) name.
    pub name: String,
    /// Token index of the name.
    pub name_tok: usize,
    /// Identifier tokens appearing in the type (for the donated-state
    /// closure in L007: `jobs: JobArena` yields `["JobArena"]`,
    /// `srpt: Vec<SrptSet>` yields `["Vec", "SrptSet"]`).
    pub ty_idents: Vec<String>,
}

/// One `struct` or `enum` item with its named fields/variants.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Token index of the name.
    pub name_tok: usize,
    /// Named fields (structs) or variants (enums).
    pub fields: Vec<FieldDef>,
    /// Whether this is an `enum` (fields are variants).
    pub is_enum: bool,
    /// Whether the item sits inside a `#[cfg(test)]` module.
    pub is_test: bool,
}

/// One `impl` block header.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// The self type's final path segment.
    pub self_ty: String,
    /// The trait's final path segment for `impl Trait for Type`.
    pub trait_name: Option<String>,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Functions, in source order.
    pub fns: Vec<FnDef>,
    /// Structs and enums, in source order.
    pub structs: Vec<StructDef>,
    /// Impl-block headers, in source order.
    pub impls: Vec<ImplDef>,
}

/// What kind of scope a brace opened.
#[derive(Debug, Clone)]
enum ScopeKind {
    Mod(String),
    Owner {
        ty: String,
        trait_name: Option<String>,
    },
    Fn(usize),
    Block,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    depth: usize,
}

struct Parser<'a> {
    file: &'a SourceFile,
    /// Indices of non-comment tokens, the stream the parser walks.
    code: Vec<usize>,
    items: FileItems,
    scopes: Vec<Scope>,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(file: &'a SourceFile) -> Self {
        let code: Vec<usize> = (0..file.tokens.len())
            .filter(|&i| !file.tokens[i].is_comment())
            .collect();
        Self {
            file,
            code,
            items: FileItems::default(),
            scopes: Vec::new(),
            depth: 0,
        }
    }

    /// Text of the `i`-th *code* token.
    fn txt(&self, i: usize) -> &str {
        self.file.tok(self.code[i])
    }

    fn kind(&self, i: usize) -> TokenKind {
        self.file.tokens[self.code[i]].kind
    }

    /// Original token index of the `i`-th code token.
    fn orig(&self, i: usize) -> usize {
        self.code[i]
    }

    fn len(&self) -> usize {
        self.code.len()
    }

    /// Skips a matched `< … >` group starting at `i` (which must be `<`).
    /// Returns the index just past the closing `>`. Handles `>>` closing
    /// two levels. Gives up (returns input + 1) after the stream ends.
    fn skip_angles(&self, mut i: usize) -> usize {
        let mut depth = 0isize;
        while i < self.len() {
            match self.txt(i) {
                "<" | "<<" => depth += if self.txt(i) == "<<" { 2 } else { 1 },
                ">" => depth -= 1,
                ">>" => depth -= 2,
                // A brace or semicolon here means the `<` was a comparison,
                // not generics — bail out without consuming.
                "{" | "}" | ";" => return i,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                return i;
            }
        }
        i
    }

    /// Skips a matched delimiter group (`(`/`[`/`{`) starting at `i`.
    /// Returns the index just past the closing delimiter.
    fn skip_group(&self, mut i: usize) -> usize {
        let (open, close) = match self.txt(i) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return i + 1,
        };
        let mut depth = 0usize;
        while i < self.len() {
            let t = self.txt(i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        i
    }

    /// The innermost enclosing owner (impl/trait) name, if any.
    fn current_owner(&self) -> (Option<String>, Option<String>) {
        for s in self.scopes.iter().rev() {
            if let ScopeKind::Owner { ty, trait_name } = &s.kind {
                return (Some(ty.clone()), trait_name.clone());
            }
        }
        (None, None)
    }

    /// The enclosing module path.
    fn current_module(&self) -> Vec<String> {
        self.scopes
            .iter()
            .filter_map(|s| match &s.kind {
                ScopeKind::Mod(m) => Some(m.clone()),
                _ => None,
            })
            .collect()
    }

    /// Index of the innermost enclosing fn, if any.
    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn(idx) => Some(idx),
            _ => None,
        })
    }

    fn open_scope(&mut self, kind: ScopeKind) {
        self.depth += 1;
        self.scopes.push(Scope {
            kind,
            depth: self.depth,
        });
    }

    /// Parses a `fn` item whose `fn` keyword sits at code index `i`.
    /// Returns the index to continue from.
    fn parse_fn(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        if j >= self.len() || self.kind(j) != TokenKind::Ident {
            return i + 1; // `fn(...)` pointer type or malformed — skip.
        }
        let name = self.txt(j).to_string();
        let name_tok = self.orig(j);
        j += 1;
        if j < self.len() && self.txt(j) == "<" {
            j = self.skip_angles(j);
        }
        // Parameter list: split on top-level commas (delimiter and angle
        // depth both tracked, so `BTreeMap<K, V>` doesn't split), then
        // read each segment as `[mut|ref|&|'…] name : Type…`.
        let mut mut_self = false;
        let mut params: Vec<(String, Vec<String>)> = Vec::new();
        if j < self.len() && self.txt(j) == "(" {
            let end = self.skip_group(j);
            let mut seg: Vec<usize> = Vec::new();
            let mut pdepth = 1isize;
            let mut adepth = 0isize;
            let mut flush = |seg: &mut Vec<usize>, parser: &Self| {
                if seg.is_empty() {
                    return;
                }
                let texts: Vec<&str> = seg.iter().map(|&c| parser.txt(c)).collect();
                if texts.contains(&"self") {
                    mut_self = texts.contains(&"mut");
                    seg.clear();
                    return;
                }
                if let Some(colon) = texts.iter().position(|&t| t == ":") {
                    let name = seg[..colon]
                        .iter()
                        .rev()
                        .find(|&&c| parser.kind(c) == TokenKind::Ident)
                        .map(|&c| parser.txt(c).to_string());
                    if let Some(name) = name {
                        let ty: Vec<String> = seg[colon + 1..]
                            .iter()
                            .filter(|&&c| parser.kind(c) == TokenKind::Ident)
                            .map(|&c| parser.txt(c).to_string())
                            .filter(|t| !matches!(t.as_str(), "mut" | "dyn" | "ref" | "impl"))
                            .collect();
                        params.push((name, ty));
                    }
                }
                seg.clear();
            };
            let mut k = j + 1;
            while k + 1 < end.max(1) {
                match self.txt(k) {
                    "(" | "[" | "{" => pdepth += 1,
                    ")" | "]" | "}" => pdepth -= 1,
                    "<" => adepth += 1,
                    "<<" => adepth += 2,
                    ">" => adepth -= 1,
                    ">>" => adepth -= 2,
                    "," if pdepth == 1 && adepth <= 0 => {
                        flush(&mut seg, self);
                        adepth = 0;
                        k += 1;
                        continue;
                    }
                    _ => {}
                }
                seg.push(k);
                k += 1;
            }
            flush(&mut seg, self);
            j = end;
        }
        // Find the body `{` or a terminating `;` (trait declaration).
        while j < self.len() {
            match self.txt(j) {
                "{" => break,
                ";" => {
                    let (owner, trait_impl) = self.current_owner();
                    self.items.fns.push(FnDef {
                        name,
                        owner,
                        trait_impl,
                        module: self.current_module(),
                        name_tok,
                        body: None,
                        mut_self,
                        params,
                        is_test: self.file.in_test_code(name_tok),
                        calls: Vec::new(),
                    });
                    return j + 1;
                }
                "(" | "[" => j = self.skip_group(j),
                _ => j += 1,
            }
        }
        if j >= self.len() {
            return j;
        }
        let (owner, trait_impl) = self.current_owner();
        let idx = self.items.fns.len();
        self.items.fns.push(FnDef {
            name,
            owner,
            trait_impl,
            module: self.current_module(),
            name_tok,
            body: Some((self.orig(j), self.orig(j))), // end patched on close
            mut_self,
            params,
            is_test: self.file.in_test_code(name_tok),
            calls: Vec::new(),
        });
        self.open_scope(ScopeKind::Fn(idx));
        j + 1
    }

    /// Parses an `impl` header at code index `i`; returns the continue
    /// index (just past the opening `{`, with the scope pushed).
    fn parse_impl(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        if j < self.len() && self.txt(j) == "<" {
            j = self.skip_angles(j);
        }
        // Collect path segments until `for`, `where`, or `{`.
        let mut first: Vec<String> = Vec::new();
        let mut second: Vec<String> = Vec::new();
        let mut after_for = false;
        while j < self.len() {
            let t = self.txt(j);
            match t {
                "{" => break,
                ";" => return j + 1, // `impl Trait for Type;` — not Rust, bail
                "for" => {
                    after_for = true;
                    j += 1;
                }
                "where" => {
                    while j < self.len() && self.txt(j) != "{" {
                        j += 1;
                    }
                }
                "<" => j = self.skip_angles(j),
                "(" | "[" => j = self.skip_group(j),
                _ => {
                    if self.kind(j) == TokenKind::Ident
                        && !matches!(t, "dyn" | "mut" | "const" | "unsafe")
                    {
                        if after_for {
                            second.push(t.to_string());
                        } else {
                            first.push(t.to_string());
                        }
                    }
                    j += 1;
                }
            }
        }
        if j >= self.len() {
            return j;
        }
        let (self_ty, trait_name) = if after_for {
            (
                second.last().cloned().unwrap_or_else(|| "?".to_string()),
                first.last().cloned(),
            )
        } else {
            (
                first.last().cloned().unwrap_or_else(|| "?".to_string()),
                None,
            )
        };
        self.items.impls.push(ImplDef {
            self_ty: self_ty.clone(),
            trait_name: trait_name.clone(),
        });
        self.open_scope(ScopeKind::Owner {
            ty: self_ty,
            trait_name,
        });
        j + 1
    }

    /// Parses a `trait Name … {` header; default method bodies are owned
    /// by the trait name.
    fn parse_trait(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        if j >= self.len() || self.kind(j) != TokenKind::Ident {
            return i + 1;
        }
        let name = self.txt(j).to_string();
        j += 1;
        while j < self.len() {
            match self.txt(j) {
                "{" => break,
                ";" => return j + 1, // `trait X: Y;` alias-like — skip
                "<" => j = self.skip_angles(j),
                "(" | "[" => j = self.skip_group(j),
                _ => j += 1,
            }
        }
        if j >= self.len() {
            return j;
        }
        self.open_scope(ScopeKind::Owner {
            ty: name,
            trait_name: None,
        });
        j + 1
    }

    /// Parses `struct`/`enum` items, recording named fields / variants.
    fn parse_struct(&mut self, i: usize, is_enum: bool) -> usize {
        let mut j = i + 1;
        if j >= self.len() || self.kind(j) != TokenKind::Ident {
            return i + 1;
        }
        let name = self.txt(j).to_string();
        let name_tok = self.orig(j);
        j += 1;
        if j < self.len() && self.txt(j) == "<" {
            j = self.skip_angles(j);
        }
        while j < self.len() && self.txt(j) == "where" {
            while j < self.len() && !matches!(self.txt(j), "{" | ";") {
                j += 1;
            }
        }
        let mut fields = Vec::new();
        if j < self.len() && self.txt(j) == "(" {
            // Tuple struct: no named fields.
            j = self.skip_group(j);
        } else if j < self.len() && self.txt(j) == "{" {
            let end = self.skip_group(j);
            let mut k = j + 1;
            let mut fdepth = 0usize;
            while k + 1 < end {
                let t = self.txt(k);
                match t {
                    "{" | "(" | "[" => {
                        fdepth += 1;
                        k += 1;
                    }
                    "}" | ")" | "]" => {
                        fdepth = fdepth.saturating_sub(1);
                        k += 1;
                    }
                    "<" if fdepth == 0 => k = self.skip_angles(k),
                    "#" if fdepth == 0 => {
                        // Attribute on a field/variant.
                        k += 1;
                        if k < end && self.txt(k) == "[" {
                            k = self.skip_group(k);
                        }
                    }
                    "pub" if fdepth == 0 => {
                        k += 1;
                        if k < end && self.txt(k) == "(" {
                            k = self.skip_group(k);
                        }
                    }
                    _ if fdepth == 0 && self.kind(k) == TokenKind::Ident => {
                        // Field `name : Type` or enum variant
                        // `Name`/`Name(…)`/`Name{…}`.
                        let fname = t.to_string();
                        let ftok = self.orig(k);
                        k += 1;
                        let mut ty_idents = Vec::new();
                        if !is_enum {
                            if k < end && self.txt(k) == ":" {
                                k += 1;
                                let mut tdepth = 0isize;
                                while k + 1 < end {
                                    let tt = self.txt(k);
                                    match tt {
                                        "<" => tdepth += 1,
                                        ">" => tdepth -= 1,
                                        ">>" => tdepth -= 2,
                                        "(" | "[" => tdepth += 1,
                                        ")" | "]" => tdepth -= 1,
                                        "," if tdepth <= 0 => break,
                                        _ => {
                                            if self.kind(k) == TokenKind::Ident {
                                                ty_idents.push(tt.to_string());
                                            }
                                        }
                                    }
                                    k += 1;
                                }
                            } else {
                                // Not a `name: ty` shape — skip forward.
                                continue;
                            }
                        } else {
                            // Variant payload.
                            if k < end && (self.txt(k) == "(" || self.txt(k) == "{") {
                                let pend = self.skip_group(k);
                                for p in k..pend {
                                    if self.kind(p) == TokenKind::Ident {
                                        ty_idents.push(self.txt(p).to_string());
                                    }
                                }
                                k = pend;
                            }
                            // Discriminant `= expr` — skip to `,`.
                            while k + 1 < end && self.txt(k) != "," {
                                k += 1;
                            }
                        }
                        fields.push(FieldDef {
                            name: fname,
                            name_tok: ftok,
                            ty_idents,
                        });
                        if k < end && self.txt(k) == "," {
                            k += 1;
                        }
                    }
                    _ => k += 1,
                }
            }
            j = end;
        } else if j < self.len() && self.txt(j) == ";" {
            j += 1;
        }
        self.items.structs.push(StructDef {
            name,
            name_tok,
            fields,
            is_enum,
            is_test: self.file.in_test_code(name_tok),
        });
        j
    }

    /// The identifier a method/index chain hangs off, looking backwards
    /// from code index `k`: walks over balanced `(…)`/`[…]` groups so
    /// `self.ring[b].push(x)` and `buckets[i].len()` both report their
    /// base identifier (`ring`, `buckets`), not `None`. `self`/`Self`
    /// count (they name the enclosing impl type to the resolver).
    fn receiver_before(&self, mut k: usize) -> Option<String> {
        loop {
            let t = self.txt(k);
            match t {
                ")" | "]" => {
                    let (open, close) = if t == ")" { ("(", ")") } else { ("[", "]") };
                    let mut depth = 1i32;
                    while k > 0 && depth > 0 {
                        k -= 1;
                        let u = self.txt(k);
                        if u == close {
                            depth += 1;
                        } else if u == open {
                            depth -= 1;
                        }
                    }
                    if depth > 0 || k == 0 {
                        return None;
                    }
                    k -= 1; // token before the opening delimiter
                }
                _ => {
                    return if self.kind(k) == TokenKind::Ident
                        && (!is_keyword(t) || matches!(t, "self" | "Self"))
                    {
                        Some(t.to_string())
                    } else {
                        None
                    };
                }
            }
        }
    }

    /// The code index just past a balanced `<…>` group opening at `open`
    /// (which must be `<`), or `None` if the group hits a token that
    /// cannot appear inside a turbofish argument list before closing.
    /// `>>` closes two levels (the lexer folds nested closers like
    /// `Vec<Vec<u8>>` into one shift token).
    fn angle_close(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut k = open;
        while k < self.len() {
            match self.txt(k) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k + 1);
                    }
                }
                ">>" => {
                    depth -= 2;
                    if depth <= 0 {
                        return Some(k + 1);
                    }
                }
                "(" | ")" | "{" | "}" | ";" | "&&" | "||" => return None,
                _ => {}
            }
            k += 1;
        }
        None
    }

    /// Records a call-shaped expression at code index `i` into the
    /// innermost enclosing fn (if any). Returns whether one was recorded.
    fn record_call(&mut self, i: usize) {
        let Some(fn_idx) = self.current_fn() else {
            return;
        };
        let t = self.txt(i).to_string();
        let site = if self.txt(i) == "[" {
            // Indexing: previous code token ends an expression.
            if i == 0 {
                return;
            }
            let prev = self.txt(i - 1);
            let is_index = matches!(self.kind(i - 1), TokenKind::Ident) && !is_keyword(prev)
                || prev == ")"
                || prev == "]"
                || prev == "?";
            if !is_index {
                return;
            }
            CallSite {
                tok: self.orig(i),
                kind: CallKind::Index,
                receiver: self.receiver_before(i - 1),
            }
        } else {
            // Identifier followed by `(` or `!(`-like.
            if self.kind(i) != TokenKind::Ident || is_keyword(&t) {
                return;
            }
            let next = if i + 1 < self.len() {
                self.txt(i + 1)
            } else {
                return;
            };
            // `name::<T, …>(…)` — a turbofish call. The `::<` belongs to
            // the argument list, not a path segment, so when the balanced
            // `<…>` closes directly onto `(` this classifies exactly like
            // the plain `name(…)` shape below. Without this, const-generic
            // helpers invoked as `self.helper::<true>()` (the engine's
            // monomorphized fast-loop cores) would fall out of the call
            // graph and look unreachable to L007/L008.
            let turbofish_call = next == "::"
                && i + 2 < self.len()
                && self.txt(i + 2) == "<"
                && self
                    .angle_close(i + 2)
                    .is_some_and(|j| j < self.len() && self.txt(j) == "(");
            if next == "!" {
                let after = if i + 2 < self.len() {
                    self.txt(i + 2)
                } else {
                    ""
                };
                if !matches!(after, "(" | "[" | "{") {
                    return; // `!=`-adjacent or macro def — not an invocation
                }
                CallSite {
                    tok: self.orig(i),
                    kind: CallKind::Macro(t),
                    receiver: None,
                }
            } else if next == "(" || turbofish_call {
                let prev = if i > 0 { self.txt(i - 1) } else { "" };
                if prev == "." {
                    let receiver = if i >= 2 {
                        self.receiver_before(i - 2)
                    } else {
                        None
                    };
                    CallSite {
                        tok: self.orig(i),
                        kind: CallKind::Method(t),
                        receiver,
                    }
                } else if prev == "::" {
                    // Walk the path backwards: (Ident ::)+ name.
                    let mut segs: Vec<String> = Vec::new();
                    let mut k = i;
                    while k >= 2 && self.txt(k - 1) == "::" && self.kind(k - 2) == TokenKind::Ident
                    {
                        segs.push(self.txt(k - 2).to_string());
                        k -= 2;
                    }
                    let head = segs.first().cloned().unwrap_or_default();
                    let root = segs.last().cloned().unwrap_or_default();
                    CallSite {
                        tok: self.orig(i),
                        kind: CallKind::Qualified {
                            head,
                            root,
                            name: t,
                        },
                        receiver: None,
                    }
                } else if prev == "fn" {
                    return;
                } else {
                    CallSite {
                        tok: self.orig(i),
                        kind: CallKind::Plain(t),
                        receiver: None,
                    }
                }
            } else {
                return;
            }
        };
        self.items.fns[fn_idx].calls.push(site);
    }

    fn run(mut self) -> FileItems {
        let mut i = 0usize;
        while i < self.len() {
            match self.txt(i) {
                "mod" => {
                    // `mod name { … }` or `mod name;`.
                    if i + 1 < self.len() && self.kind(i + 1) == TokenKind::Ident {
                        let name = self.txt(i + 1).to_string();
                        if i + 2 < self.len() && self.txt(i + 2) == "{" {
                            self.open_scope(ScopeKind::Mod(name));
                            i += 3;
                            continue;
                        }
                    }
                    i += 1;
                }
                "impl" => i = self.parse_impl(i),
                "trait" => i = self.parse_trait(i),
                "fn" => i = self.parse_fn(i),
                "struct" => i = self.parse_struct(i, false),
                "enum" => i = self.parse_struct(i, true),
                "macro_rules" => {
                    // `macro_rules! name { … }` — skip the whole definition.
                    let mut j = i + 1;
                    while j < self.len() && !matches!(self.txt(j), "{" | "(" | "[") {
                        j += 1;
                    }
                    i = if j < self.len() {
                        self.skip_group(j)
                    } else {
                        j
                    };
                }
                "{" => {
                    self.open_scope(ScopeKind::Block);
                    i += 1;
                }
                "}" => {
                    while let Some(s) = self.scopes.last() {
                        if s.depth == self.depth {
                            if let ScopeKind::Fn(idx) = s.kind {
                                if let Some((start, _)) = self.items.fns[idx].body {
                                    self.items.fns[idx].body = Some((start, self.orig(i) + 1));
                                }
                            }
                            self.scopes.pop();
                        } else {
                            break;
                        }
                    }
                    self.depth = self.depth.saturating_sub(1);
                    i += 1;
                }
                _ => {
                    self.record_call(i);
                    i += 1;
                }
            }
        }
        self.items
    }
}

fn is_keyword(t: &str) -> bool {
    NON_CALL_WORDS.contains(&t) || t == "self" || t == "Self"
}

/// Parses one file's items. Total: never panics, always terminates.
pub fn parse_items(file: &SourceFile) -> FileItems {
    Parser::new(file).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> FileItems {
        parse_items(&SourceFile::new("crates/x/src/lib.rs", src))
    }

    #[test]
    fn extracts_fns_with_owners_and_receivers() {
        let it = items(
            "pub struct Engine { now: f64 }\n\
             impl Engine {\n    pub fn run(&mut self) { self.step(); }\n    fn peek(&self) {}\n}\n\
             impl std::fmt::Display for Engine { fn fmt(&self) {} }\n\
             fn free() {}\n",
        );
        let run = it.fns.iter().find(|f| f.name == "run").unwrap();
        assert_eq!(run.owner.as_deref(), Some("Engine"));
        assert!(run.mut_self);
        let peek = it.fns.iter().find(|f| f.name == "peek").unwrap();
        assert!(!peek.mut_self);
        let fmt = it.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(fmt.trait_impl.as_deref(), Some("Display"));
        assert_eq!(fmt.owner.as_deref(), Some("Engine"));
        let free = it.fns.iter().find(|f| f.name == "free").unwrap();
        assert!(free.owner.is_none());
    }

    #[test]
    fn extracts_call_shapes() {
        let it = items(
            "fn f(xs: &mut Vec<u32>) {\n\
                 helper();\n\
                 xs.push(1);\n\
                 let b = Box::new(2);\n\
                 let v = vec![1, 2];\n\
                 let y = xs[0];\n\
                 std::mem::take(xs);\n\
             }\n",
        );
        let f = &it.fns[0];
        let kinds: Vec<String> = f.calls.iter().map(|c| c.kind.name()).collect();
        assert!(kinds.contains(&"helper".to_string()), "{kinds:?}");
        assert!(kinds.contains(&"push".to_string()));
        assert!(kinds.contains(&"new".to_string()));
        assert!(kinds.contains(&"vec!".to_string()));
        assert!(kinds.contains(&"[]".to_string()));
        let take = f
            .calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Qualified { name, .. } if name == "take"))
            .unwrap();
        assert_eq!(take.qualified_name(), "mem::take");
        match &take.kind {
            CallKind::Qualified { root, .. } => assert_eq!(root, "std"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn turbofish_calls_are_recorded() {
        let it = items(
            "fn f(&mut self) {\n\
                 self.admit_core::<true, false, NOTIFY>();\n\
                 run_fast_loop::<false>();\n\
                 parse::<Vec<Vec<u8>>>(s);\n\
                 Wrapper::lift::<u32>(x);\n\
                 let small = a < b;\n\
             }\n",
        );
        let f = &it.fns[0];
        let admit = f
            .calls
            .iter()
            .find(|c| c.kind.name() == "admit_core")
            .expect("const-generic method turbofish records a call");
        assert!(matches!(&admit.kind, CallKind::Method(_)));
        assert!(
            f.calls
                .iter()
                .any(|c| c.kind.name() == "run_fast_loop" && matches!(&c.kind, CallKind::Plain(_))),
            "plain turbofish call recorded"
        );
        assert!(
            f.calls.iter().any(|c| c.kind.name() == "parse"),
            "nested generics with a folded `>>` closer still resolve"
        );
        assert!(
            f.calls
                .iter()
                .any(|c| matches!(&c.kind, CallKind::Qualified { name, .. } if name == "lift")),
            "qualified turbofish call keeps its path"
        );
        // A bare comparison must not be mistaken for a turbofish.
        assert!(!f.calls.iter().any(|c| c.kind.name() == "b"));
    }

    #[test]
    fn method_calls_carry_their_receiver_ident() {
        let it = items("fn f(&mut self) { self.completed.push(1); moves.push(2); }\n");
        let pushes: Vec<_> = it.fns[0]
            .calls
            .iter()
            .filter(|c| c.kind.name() == "push")
            .collect();
        assert_eq!(pushes.len(), 2);
        assert_eq!(pushes[0].receiver.as_deref(), Some("completed"));
        assert_eq!(pushes[1].receiver.as_deref(), Some("moves"));
    }

    #[test]
    fn struct_fields_and_enum_variants() {
        let it = items(
            "pub struct Buffers { jobs: JobArena, alive: Vec<usize>, pair: (f64, f64) }\n\
             enum Queue { Calendar(CalendarQueue), Heap { h: BinaryHeap<u64> } }\n\
             struct Unit;\nstruct Tup(f64, u32);\n",
        );
        let b = it.structs.iter().find(|s| s.name == "Buffers").unwrap();
        let names: Vec<&str> = b.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["jobs", "alive", "pair"]);
        assert_eq!(b.fields[0].ty_idents, ["JobArena"]);
        assert_eq!(b.fields[1].ty_idents, ["Vec", "usize"]);
        let q = it.structs.iter().find(|s| s.name == "Queue").unwrap();
        assert!(q.is_enum);
        let vn: Vec<&str> = q.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(vn, ["Calendar", "Heap"]);
        assert!(q.fields[0].ty_idents.contains(&"CalendarQueue".to_string()));
        assert!(it.structs.iter().any(|s| s.name == "Unit"));
        assert!(it
            .structs
            .iter()
            .any(|s| s.name == "Tup" && s.fields.is_empty()));
    }

    #[test]
    fn nested_modules_and_test_ranges() {
        let it = items(
            "mod inner { pub fn g() {} }\n\
             #[cfg(test)]\nmod tests { fn t() { danger(); } }\n",
        );
        let g = it.fns.iter().find(|f| f.name == "g").unwrap();
        assert_eq!(g.module, ["inner"]);
        assert!(!g.is_test);
        let t = it.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
    }

    #[test]
    fn trait_default_methods_are_owned_by_the_trait() {
        let it = items(
            "pub trait Observer {\n    fn on_advance(&mut self, t: f64) { let _ = t; }\n    fn hook(&self);\n}\n",
        );
        let d = it.fns.iter().find(|f| f.name == "on_advance").unwrap();
        assert_eq!(d.owner.as_deref(), Some("Observer"));
        assert!(d.body.is_some());
        let h = it.fns.iter().find(|f| f.name == "hook").unwrap();
        assert!(h.body.is_none());
    }

    #[test]
    fn attributes_and_slice_patterns_are_not_indexing() {
        let it = items("#[derive(Debug)]\nfn f(a: [u8; 4]) { let [x, _y] = [1, 2]; let _ = x; }\n");
        let f = it.fns.iter().find(|x| x.name == "f").unwrap();
        assert!(
            !f.calls.iter().any(|c| c.kind == CallKind::Index),
            "{:?}",
            f.calls
        );
    }

    #[test]
    fn total_on_garbage() {
        for src in ["fn", "impl <<<", "struct {", "fn f( {{{", "}}}}", "mod"] {
            let _ = items(src);
        }
    }
}
