//! A span-tracking Rust lexer.
//!
//! Tokenizes Rust source into a flat stream of spanned tokens — just
//! enough structure for pattern-shaped lint rules: identifiers, literals
//! (with float/int distinction, since the float-hygiene rules key on it),
//! comments (kept, since waivers live in them), and operators matched
//! longest-first (so `+=`, `==`, `::` arrive as single tokens). It does
//! not parse: rules scan the token stream with small cursors, the same
//! offline discipline `jsonlite` uses for JSON.
//!
//! The lexer is lossless over the constructs that matter to the rules and
//! deliberately forgiving elsewhere: an unterminated string or comment
//! yields a token running to end-of-file rather than an error, so a lint
//! pass never aborts half-way through a workspace.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Floating-point literal (`1.0`, `2e-9`, `0.5f32`).
    Float,
    /// String, raw-string, byte-string, or C-string literal.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Operator or delimiter, longest-match (`+=`, `==`, `::`, `{`, …).
    Op,
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment (nesting handled), including doc variants.
    BlockComment,
}

/// One lexeme with its position.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexeme kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is any comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Multi-byte operators, longest first so greedy matching is correct.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.bytes.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advances by `n` bytes, maintaining the line/column counters.
    fn bump(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    fn is_ident_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
    }

    fn is_ident_continue(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
    }

    /// Consumes a `"…"` body (opening quote already consumed).
    fn skip_string(&mut self) {
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump(2),
                b'"' => {
                    self.bump(1);
                    return;
                }
                _ => self.bump(1),
            }
        }
    }

    /// Consumes `r##"…"##` given the number of `#`s (after `r`/`br`).
    fn skip_raw_string(&mut self, hashes: usize) {
        // Opening hashes + quote.
        self.bump(hashes + 1);
        while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump(1 + hashes);
                    return;
                }
            }
            self.bump(1);
        }
    }

    fn lex_number(&mut self) -> TokenKind {
        let start = self.pos;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump(2);
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump(1);
            }
            return TokenKind::Int;
        }
        let mut float = false;
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump(1);
        }
        // A fractional part only if `.` is followed by a digit — `1..n` is
        // a range and `1.max(2)` a method call, not floats.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            float = true;
            self.bump(1);
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump(1);
            }
        }
        // `1.` (trailing dot, not followed by ident/digit/dot) is a float.
        if !float
            && self.peek(0) == b'.'
            && !Self::is_ident_start(self.peek(1))
            && self.peek(1) != b'.'
        {
            float = true;
            self.bump(1);
        }
        if matches!(self.peek(0), b'e' | b'E')
            && (self.peek(1).is_ascii_digit()
                || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
        {
            float = true;
            self.bump(2);
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump(1);
            }
        }
        // Type suffix (`u64`, `f32`, …) decides ambiguous cases.
        let suffix_start = self.pos;
        while Self::is_ident_continue(self.peek(0)) {
            self.bump(1);
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix.starts_with('f') {
            float = true;
        }
        let _ = start;
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn next_token(&mut self) -> Option<Token> {
        while self.pos < self.bytes.len() && self.peek(0).is_ascii_whitespace() {
            self.bump(1);
        }
        if self.pos >= self.bytes.len() {
            return None;
        }
        let (start, line, col) = (self.pos, self.line, self.col);
        let b = self.peek(0);
        let kind = match b {
            b'/' if self.peek(1) == b'/' => {
                while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                    self.bump(1);
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == b'*' => {
                self.bump(2);
                let mut depth = 1usize;
                while self.pos < self.bytes.len() && depth > 0 {
                    if self.peek(0) == b'/' && self.peek(1) == b'*' {
                        depth += 1;
                        self.bump(2);
                    } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                        depth -= 1;
                        self.bump(2);
                    } else {
                        self.bump(1);
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                self.bump(1);
                self.skip_string();
                TokenKind::Str
            }
            b'r' | b'b' | b'c' => {
                // Raw strings (r"…", r#"…"#), byte/C strings (b"…", br#"…"#,
                // c"…"), byte chars (b'x'), raw identifiers (r#type) — or a
                // plain identifier starting with one of these letters.
                let (is_raw, plen) = match (b, self.peek(1)) {
                    (b'r', _) => (true, 1),
                    (b'b', b'r') => (true, 2),
                    _ => (false, 1),
                };
                let mut hashes = 0;
                if is_raw {
                    while self.peek(plen + hashes) == b'#' {
                        hashes += 1;
                    }
                }
                if b == b'b' && !is_raw && self.peek(plen) == b'\'' {
                    // b'x' byte literal.
                    self.bump(plen + 1);
                    while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                        if self.peek(0) == b'\\' {
                            self.bump(1);
                        }
                        self.bump(1);
                    }
                    self.bump(1);
                    TokenKind::Char
                } else if !is_raw && self.peek(plen) == b'"' {
                    // b"…" / c"…": escapes allowed, plain string scan.
                    self.bump(plen + 1);
                    self.skip_string();
                    TokenKind::Str
                } else if is_raw && self.peek(plen + hashes) == b'"' {
                    self.bump(plen);
                    self.skip_raw_string(hashes);
                    TokenKind::Str
                } else if b == b'r' && hashes > 0 {
                    // Raw identifier r#type.
                    self.bump(plen + hashes);
                    while Self::is_ident_continue(self.peek(0)) {
                        self.bump(1);
                    }
                    TokenKind::Ident
                } else {
                    while Self::is_ident_continue(self.peek(0)) {
                        self.bump(1);
                    }
                    TokenKind::Ident
                }
            }
            b'\'' => {
                // Lifetime ('a) vs char literal ('a', '\n', '🦀').
                if Self::is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
                    self.bump(1);
                    while Self::is_ident_continue(self.peek(0)) {
                        self.bump(1);
                    }
                    TokenKind::Lifetime
                } else {
                    self.bump(1);
                    while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                        if self.peek(0) == b'\\' {
                            self.bump(1);
                        }
                        self.bump(1);
                    }
                    self.bump(1);
                    TokenKind::Char
                }
            }
            _ if b.is_ascii_digit() => self.lex_number(),
            _ if Self::is_ident_start(b) => {
                while Self::is_ident_continue(self.peek(0)) {
                    self.bump(1);
                }
                TokenKind::Ident
            }
            _ => {
                let rest = &self.src[self.pos..];
                let op = OPS.iter().find(|op| rest.starts_with(**op));
                match op {
                    Some(op) => self.bump(op.len()),
                    None => self.bump(1),
                }
                TokenKind::Op
            }
        };
        Some(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        })
    }
}

/// Tokenizes `src`, keeping comments (waivers live in them).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(t) = lx.next_token() {
        // Defensive: an empty token would loop forever upstream.
        debug_assert!(t.end > t.start, "empty token at byte {}", t.start);
        if t.end == t.start {
            break;
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn lexes_operators_longest_first() {
        let ts = kinds("a += b == c != d :: e");
        let ops: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Op)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ops, ["+=", "==", "!=", "::"]);
    }

    #[test]
    fn distinguishes_float_and_int_literals() {
        let ts = kinds("1 1.0 2e-9 0xff 1_000u64 0.5f32 3.");
        let got: Vec<TokenKind> = ts.iter().map(|(k, _)| *k).collect();
        use TokenKind::*;
        assert_eq!(got, vec![Int, Float, Float, Int, Int, Float, Float]);
    }

    #[test]
    fn range_and_method_on_int_are_not_floats() {
        let ts = kinds("0..n 1.max(2)");
        assert_eq!(ts[0], (TokenKind::Int, "0".to_string()));
        assert_eq!(ts[1], (TokenKind::Op, "..".to_string()));
        let one = &ts[3];
        assert_eq!(*one, (TokenKind::Int, "1".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("&'a str 'x' '\\n'");
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Lifetime && s == "'a"));
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn strings_raw_strings_and_comments() {
        let src = r##"let s = r#"a "quoted" b"#; // trailing
/* block /* nested */ still */ let t = "x\"y";"##;
        let ts = kinds(src);
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(
            ts.iter()
                .filter(|(k, _)| *k == TokenKind::LineComment)
                .count(),
            1
        );
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::BlockComment && s.contains("nested")));
    }

    #[test]
    fn tracks_lines_and_columns() {
        let src = "a\n  b += 1.5\n";
        let ts = lex(src);
        let b = ts.iter().find(|t| t.text(src) == "b").unwrap();
        assert_eq!((b.line, b.col), (2, 3));
        let f = ts.iter().find(|t| t.kind == TokenKind::Float).unwrap();
        assert_eq!(f.line, 2);
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"raw", "'"] {
            let _ = lex(src);
        }
    }
}
