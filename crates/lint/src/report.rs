//! Rendering a [`LintOutcome`] for humans and for machines.

use crate::engine::LintOutcome;
use crate::rules::catalog;

/// Human `file:line:col: RULE message` lines plus a summary footer.
pub fn render_human(out: &LintOutcome) -> String {
    let mut s = String::new();
    for e in &out.errors {
        s.push_str(&format!("error: {e}\n"));
    }
    for d in &out.violations {
        s.push_str(&format!(
            "{}:{}:{}: {} {}\n",
            d.path, d.line, d.col, d.rule, d.message
        ));
    }
    for p in &out.waiver_problems {
        s.push_str(&format!("{}:{}:1: waiver {}\n", p.path, p.line, p.detail));
    }
    s.push_str(&format!(
        "{} file{} analyzed: {} violation{}, {} waived, {} waiver problem{}, \
         {} open call-graph edge{}\n",
        out.files,
        plural(out.files),
        out.violations.len(),
        plural(out.violations.len()),
        out.waived.len(),
        out.waiver_problems.len(),
        plural(out.waiver_problems.len()),
        out.open_edges,
        plural(out.open_edges),
    ));
    s
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Escapes a string for embedding in JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine output, schema `parsched-lint/v1` (hand-rolled JSON in the
/// house style — the offline serde shim does not serialize).
pub fn render_json(out: &LintOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"parsched-lint/v1\",\n");
    s.push_str(&format!("  \"files\": {},\n", out.files));
    s.push_str(&format!("  \"open_edges\": {},\n", out.open_edges));
    // Fatal run errors: present (possibly empty) in every document, so an
    // exit-2 run is structurally distinguishable from a clean empty one.
    s.push_str("  \"errors\": [\n");
    for (i, e) in out.errors.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\"{}\n",
            esc(e),
            if i + 1 < out.errors.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"rules\": [\n");
    let rules = catalog();
    for (i, r) in rules.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"summary\": \"{}\"}}{}\n",
            r.id(),
            esc(r.summary()),
            if i + 1 < rules.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"violations\": [\n");
    for (i, d) in out.violations.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}{}\n",
            d.rule,
            esc(&d.path),
            d.line,
            d.col,
            esc(&d.message),
            if i + 1 < out.violations.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n  \"waived\": [\n");
    for (i, (d, reason)) in out.waived.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{}\n",
            d.rule,
            esc(&d.path),
            d.line,
            esc(reason),
            if i + 1 < out.waived.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"waiver_problems\": [\n");
    for (i, p) in out.waiver_problems.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"path\": \"{}\", \"line\": {}, \"detail\": \"{}\"}}{}\n",
            esc(&p.path),
            p.line,
            esc(&p.detail),
            if i + 1 < out.waiver_problems.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One SARIF result object.
fn sarif_result(
    rule_id: &str,
    level: &str,
    message: &str,
    path: &str,
    line: u32,
    col: u32,
    justification: Option<&str>,
) -> String {
    let suppressions = match justification {
        Some(j) => format!(
            ",\n          \"suppressions\": [{{\"kind\": \"inSource\", \
             \"justification\": \"{}\"}}]",
            esc(j)
        ),
        None => String::new(),
    };
    format!(
        "        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"{}\",\n          \
         \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [{{\"physicalLocation\": \
         {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \
         \"startColumn\": {}}}}}}}]{}\n        }}",
        esc(rule_id),
        level,
        esc(message),
        esc(path),
        line.max(1),
        col.max(1),
        suppressions
    )
}

/// SARIF 2.1.0 output (stable rule ids, one run, one result per
/// violation/waiver problem; waived diagnostics appear as suppressed
/// `note` results so review UIs can show them without failing the check).
/// Exit-code semantics are identical to the other formats — the renderer
/// only changes the encoding.
pub fn render_sarif(out: &LintOutcome) -> String {
    let mut results: Vec<String> = Vec::new();
    for d in &out.violations {
        results.push(sarif_result(
            d.rule, "error", &d.message, &d.path, d.line, d.col, None,
        ));
    }
    for p in &out.waiver_problems {
        results.push(sarif_result(
            "waiver", "error", &p.detail, &p.path, p.line, 1, None,
        ));
    }
    for (d, reason) in &out.waived {
        results.push(sarif_result(
            d.rule,
            "note",
            &d.message,
            &d.path,
            d.line,
            d.col,
            Some(reason),
        ));
    }
    let rules = catalog();
    let rule_objs: Vec<String> = rules
        .iter()
        .map(|r| {
            format!(
                "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                r.id(),
                esc(r.summary())
            )
        })
        .collect();
    let notifications: Vec<String> = out
        .errors
        .iter()
        .map(|e| {
            format!(
                "            {{\"level\": \"error\", \"message\": {{\"text\": \"{}\"}}}}",
                esc(e)
            )
        })
        .collect();
    format!(
        "{{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {{\n      \"tool\": {{\n        \
         \"driver\": {{\n          \"name\": \"parsched-lint\",\n          \
         \"informationUri\": \"docs/LINTS.md\",\n          \"rules\": [\n{}\n          ]\n        \
         }}\n      }},\n      \"invocations\": [\n        {{\n          \
         \"executionSuccessful\": {},\n          \"toolExecutionNotifications\": [\n{}\n          \
         ]\n        }}\n      ],\n      \"results\": [\n{}\n      ]\n    }}\n  ]\n}}\n",
        rule_objs.join(",\n"),
        out.errors.is_empty(),
        notifications.join(",\n"),
        results.join(",\n")
    )
}
