//! Rendering a [`LintOutcome`] for humans and for machines.

use crate::engine::LintOutcome;
use crate::rules::catalog;

/// Human `file:line:col: RULE message` lines plus a summary footer.
pub fn render_human(out: &LintOutcome) -> String {
    let mut s = String::new();
    for d in &out.violations {
        s.push_str(&format!(
            "{}:{}:{}: {} {}\n",
            d.path, d.line, d.col, d.rule, d.message
        ));
    }
    for p in &out.waiver_problems {
        s.push_str(&format!("{}:{}:1: waiver {}\n", p.path, p.line, p.detail));
    }
    s.push_str(&format!(
        "{} file{} analyzed: {} violation{}, {} waived, {} waiver problem{}\n",
        out.files,
        plural(out.files),
        out.violations.len(),
        plural(out.violations.len()),
        out.waived.len(),
        out.waiver_problems.len(),
        plural(out.waiver_problems.len()),
    ));
    s
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Escapes a string for embedding in JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine output, schema `parsched-lint/v1` (hand-rolled JSON in the
/// house style — the offline serde shim does not serialize).
pub fn render_json(out: &LintOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"parsched-lint/v1\",\n");
    s.push_str(&format!("  \"files\": {},\n", out.files));
    s.push_str("  \"rules\": [\n");
    let rules = catalog();
    for (i, r) in rules.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"summary\": \"{}\"}}{}\n",
            r.id(),
            esc(r.summary()),
            if i + 1 < rules.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"violations\": [\n");
    for (i, d) in out.violations.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}{}\n",
            d.rule,
            esc(&d.path),
            d.line,
            d.col,
            esc(&d.message),
            if i + 1 < out.violations.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n  \"waived\": [\n");
    for (i, (d, reason)) in out.waived.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{}\n",
            d.rule,
            esc(&d.path),
            d.line,
            esc(reason),
            if i + 1 < out.waived.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"waiver_problems\": [\n");
    for (i, p) in out.waiver_problems.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"path\": \"{}\", \"line\": {}, \"detail\": \"{}\"}}{}\n",
            esc(&p.path),
            p.line,
            esc(&p.detail),
            if i + 1 < out.waiver_problems.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
