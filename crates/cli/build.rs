//! Build-time provenance for `parsched bench-snapshot`: the opt-level and
//! compiler version a benchmark binary was built with are part of the
//! measurement, so the snapshot JSON records them (a debug-build or
//! stale-toolchain snapshot must be recognizable as such).

use std::env;
use std::process::Command;

fn main() {
    // OPT_LEVEL is set by cargo for every build script invocation.
    println!(
        "cargo:rustc-env=PARSCHED_OPT_LEVEL={}",
        env::var("OPT_LEVEL").unwrap_or_default()
    );
    // RUSTC points at the exact compiler driving this build (which may
    // differ from whatever `rustc` is on PATH at snapshot time).
    let rustc = env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = Command::new(rustc)
        .arg("-V")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    println!("cargo:rustc-env=PARSCHED_RUSTC_VERSION={version}");
}
