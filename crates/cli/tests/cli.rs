//! End-to-end tests of the `parsched` binary.

use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parsched"))
}

#[test]
fn list_shows_every_experiment() {
    let out = bin().arg("list").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    for id in [
        "f1", "f2", "f3", "f4", "f5", "f6", "t1", "t2", "t3", "t4", "t5", "x2", "x3",
    ] {
        assert!(text.contains(id), "missing {id} in:\n{text}");
    }
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("USAGE"));
    assert!(text.contains("compare"));
}

#[test]
fn no_args_fails_with_usage() {
    let out = bin().output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .expect("utf8")
        .contains("USAGE"));
}

#[test]
fn unknown_experiment_is_an_error() {
    let out = bin().args(["exp", "zz"]).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .expect("utf8")
        .contains("unknown experiment"));
}

#[test]
fn quick_experiment_runs_and_reports_shape() {
    let out = bin().args(["exp", "f5", "--quick"]).output().expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("SHAPE OK"));
    assert!(text.contains("F5b"));
}

#[test]
fn markdown_and_csv_flags_add_formats() {
    let out = bin()
        .args(["exp", "f5", "--quick", "--md", "--csv"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("markdown ("));
    assert!(text.contains("csv ("));
    assert!(text.contains("|---|"));
}

#[test]
fn gen_then_run_pipeline() {
    let out = bin()
        .args([
            "gen", "--kind", "poisson", "--n", "20", "--m", "4", "--p", "8",
        ])
        .output()
        .expect("gen");
    assert!(out.status.success());
    let csv = String::from_utf8(out.stdout).expect("utf8");
    assert!(csv.starts_with("id,release,size,curve\n"));
    assert_eq!(csv.lines().count(), 21);

    // Pipe it back through `run` via stdin.
    let mut child = bin()
        .args([
            "run",
            "--instance",
            "-",
            "--policy",
            "isrpt",
            "--m",
            "4",
            "--gantt",
            "40",
            "--bracket",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn run");
    use std::io::Write as _;
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(csv.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("Intermediate-SRPT on m=4"));
    assert!(text.contains("n=20"));
    assert!(text.contains('█'), "gantt missing: {text}");
    assert!(text.contains("ratio ∈"));
}

#[test]
fn gen_covers_every_family() {
    for kind in ["poisson", "batch", "sawtooth", "trap", "mix"] {
        let out = bin()
            .args(["gen", "--kind", kind, "--n", "16", "--m", "4"])
            .output()
            .expect("gen");
        assert!(out.status.success(), "{kind}");
        let csv = String::from_utf8(out.stdout).expect("utf8");
        assert!(csv.lines().count() > 2, "{kind} produced {csv}");
    }
    let out = bin()
        .args(["gen", "--kind", "bogus"])
        .output()
        .expect("gen");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn compare_prints_policy_table() {
    let out = bin()
        .args(["compare", "--n", "40", "--m", "4"])
        .output()
        .expect("compare");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("Intermediate-SRPT"));
    assert!(text.contains("OPT bracket"));
}

#[test]
fn run_with_speed_augmentation() {
    let gen = bin()
        .args(["gen", "--kind", "batch", "--n", "10", "--m", "4"])
        .output()
        .expect("gen");
    let tmp = std::env::temp_dir().join("parsched_cli_test_batch.csv");
    std::fs::write(&tmp, &gen.stdout).expect("write tmp");
    let out = bin()
        .args([
            "run",
            "--instance",
            tmp.to_str().expect("utf8 path"),
            "--policy",
            "equi",
            "--m",
            "4",
            "--speed",
            "2.0",
        ])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("(speed 2)"));
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn run_stream_reports_quantiles_and_memory() {
    let out = bin()
        .args([
            "run",
            "--stream",
            "--kind",
            "poisson",
            "--n",
            "5000",
            "--m",
            "8",
            "--policy",
            "isrpt",
            "--audit=sampled:256",
        ])
        .output()
        .expect("run --stream");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("[streaming poisson]"), "{text}");
    assert!(text.contains("n=5000"), "{text}");
    assert!(text.contains("flow quantiles"), "{text}");
    assert!(text.contains("peak alive="), "{text}");
    assert!(text.contains("audit sampled ✓"), "{text}");
}

#[test]
fn run_stream_covers_trap_and_phase_families() {
    for kind in ["trap", "phases"] {
        let out = bin()
            .args([
                "run", "--stream", "--kind", kind, "--n", "2000", "--m", "4", "--policy", "equi",
            ])
            .output()
            .expect("run --stream");
        assert!(
            out.status.success(),
            "{kind} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).expect("utf8");
        assert!(text.contains(&format!("[streaming {kind}]")), "{text}");
        assert!(text.contains("admitted="), "{text}");
    }
}

/// Exit-code contract of `parsched audit`: 0 = replay clean, 1 = audit
/// violation, 2 = unreadable/unparseable input. The library-level split
/// between the two error shapes is pinned in `tests/trace_roundtrip.rs`;
/// this checks the mapping end to end on real files.
#[test]
fn audit_exit_codes_distinguish_parse_errors_from_violations() {
    let golden = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/golden_trace.json");
    let text = std::fs::read_to_string(&golden).expect("committed golden trace");
    let tmp = std::env::temp_dir();

    // Clean replay → 0.
    let out = bin()
        .args(["audit", golden.to_str().expect("utf8 path")])
        .output()
        .expect("audit golden");
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("audit PASS"));

    // Parse errors → 2: missing file, empty file, truncated file.
    let empty = tmp.join("parsched_cli_audit_empty.json");
    std::fs::write(&empty, "").expect("write tmp");
    let truncated = tmp.join("parsched_cli_audit_truncated.json");
    std::fs::write(&truncated, &text[..text.len() / 2]).expect("write tmp");
    for path in [
        "/nonexistent/trace.json",
        empty.to_str().unwrap(),
        truncated.to_str().unwrap(),
    ] {
        let out = bin().args(["audit", path]).output().expect("audit");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{path}: parse/IO failure must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // A parseable trace whose recorded summary contradicts its event log
    // → violation → 1.
    let tampered = tmp.join("parsched_cli_audit_tampered.json");
    let needle = "\"num_jobs\": 5";
    assert!(text.contains(needle), "golden fixture shape changed");
    std::fs::write(&tampered, text.replace(needle, "\"num_jobs\": 6")).expect("write tmp");
    let out = bin()
        .args(["audit", tampered.to_str().unwrap()])
        .output()
        .expect("audit tampered");
    assert_eq!(
        out.status.code(),
        Some(1),
        "violation must exit 1, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("audit FAIL"));

    for f in [empty, truncated, tampered] {
        let _ = std::fs::remove_file(f);
    }
}

/// The adversary search's CLI contract: identical stdout whatever
/// `--jobs` is (timings go to stderr), a t5-style summary table, and
/// exit 0 on a clean search.
#[test]
fn adversary_smoke_is_jobs_invariant_on_stdout() {
    let run = |jobs: &str| {
        let out = bin()
            .args([
                "adversary",
                "--policy",
                "isrpt",
                "--budget",
                "24",
                "--seed",
                "7",
                "--jobs",
                jobs,
            ])
            .output()
            .expect("adversary");
        assert!(
            out.status.success(),
            "--jobs {jobs} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8")
    };
    let serial = run("1");
    assert!(serial.contains("best-ratio trajectory"), "{serial}");
    assert!(serial.contains("worst ratio"), "{serial}");
    assert_eq!(serial, run("4"), "stdout must not depend on --jobs");
}

#[test]
fn adversary_rejects_unknown_policy() {
    let out = bin()
        .args(["adversary", "--policy", "bogus", "--budget", "4"])
        .output()
        .expect("adversary");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn run_stream_rejects_unknown_kind() {
    let out = bin()
        .args(["run", "--stream", "--kind", "nope", "--n", "10"])
        .output()
        .expect("run --stream");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --kind"));
}

/// `parsched fleet` output — text and JSON — must be byte-identical for
/// every `--jobs N`, including with every suspension forced through the
/// migration codec. This is the CLI face of the fleet determinism
/// contract (crates/fleet/tests/fleet_determinism.rs).
#[test]
fn fleet_is_jobs_invariant_including_forced_migrations() {
    let run = |extra: &[&str]| {
        let mut args = vec!["fleet", "--tenants", "14", "--slice", "6", "--json"];
        args.extend_from_slice(extra);
        let out = bin().args(&args).output().expect("fleet");
        assert!(
            out.status.success(),
            "{extra:?} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8")
    };
    let serial = run(&["--jobs", "1"]);
    assert!(
        serial.contains("\"format\":\"parsched-fleet/v1\""),
        "{serial}"
    );
    assert!(serial.contains("\"done\":14"), "{serial}");
    assert_eq!(
        serial,
        run(&["--jobs", "4"]),
        "stdout must not depend on --jobs"
    );
    let migrated = run(&["--jobs", "1", "--migrate"]);
    assert_eq!(
        migrated,
        run(&["--jobs", "4", "--migrate"]),
        "migrated stdout must not depend on --jobs"
    );
    // Migration may only change the echoed `migrate` config field, never
    // a tenant result.
    assert_eq!(
        serial.replace("\"migrate\":false", "\"migrate\":true"),
        migrated,
        "forcing migrations changed tenant results"
    );
}

/// Admission caps: submissions beyond `--cap + --queue` are shed with a
/// recorded reason, shedding is reported in the JSON contract, and the
/// exit code flips to 1. The shed set depends only on submission order,
/// so it is identical for every worker count.
#[test]
fn fleet_backpressure_sheds_deterministically_and_exits_1() {
    let run = |jobs: &str| {
        let out = bin()
            .args([
                "fleet",
                "--tenants",
                "9",
                "--cap",
                "2",
                "--queue",
                "3",
                "--jobs",
                jobs,
                "--json",
            ])
            .output()
            .expect("fleet");
        assert_eq!(out.status.code(), Some(1), "shed fleet must exit 1");
        String::from_utf8(out.stdout).expect("utf8")
    };
    let serial = run("1");
    assert!(serial.contains("\"done\":5"), "{serial}");
    assert!(serial.contains("\"shed\":4"), "{serial}");
    assert!(serial.contains("\"failed\":0"), "{serial}");
    assert!(
        serial.contains(
            "\"status\":\"shed\",\"reason\":\"admission queue full (2 in-flight + 3 pending)\""
        ),
        "{serial}"
    );
    // Exactly tenants 5..8 (submission order) are shed.
    for (name, want_shed) in (0..9).map(|i| (format!("tenant-{i:04}"), i >= 5)) {
        let section = serial
            .split(&format!("\"name\":\"{name}\""))
            .nth(1)
            .unwrap_or_else(|| panic!("missing {name} in {serial}"));
        let status = &section[..section.find('}').unwrap_or(section.len())];
        assert_eq!(
            status.contains("\"status\":\"shed\""),
            want_shed,
            "{name}: {status}"
        );
    }
    assert_eq!(serial, run("4"), "shed set must not depend on --jobs");
}

#[test]
fn fleet_rejects_degenerate_parameters() {
    let out = bin()
        .args(["fleet", "--tenants", "3", "--slice", "0"])
        .output()
        .expect("fleet");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("slice_events"));
    let out = bin()
        .args(["fleet", "--tenants", "x"])
        .output()
        .expect("fleet");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --tenants"));
}

/// Path to a lint fixture tree committed under the lint crate.
fn lint_fixture(name: &str) -> String {
    format!(
        "{}/../lint/tests/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn lint_exit_codes_agree_across_formats() {
    // The CI gate keys off the exit code, not the report body: a tripping
    // tree must exit 1 and a clean tree 0 in every format.
    for (tree, want) in [("l007", 1), ("clean", 0)] {
        for fmt in ["human", "json", "sarif"] {
            let out = bin()
                .args(["lint", "--root", &lint_fixture(tree), "--format", fmt])
                .output()
                .expect("lint");
            assert_eq!(
                out.status.code(),
                Some(want),
                "{tree}/{fmt}:\n{}",
                String::from_utf8_lossy(&out.stdout)
            );
        }
    }
}

#[test]
fn lint_sarif_document_carries_rules_and_results() {
    let out = bin()
        .args(["lint", "--root", &lint_fixture("l009"), "--format", "sarif"])
        .output()
        .expect("lint");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("\"version\": \"2.1.0\""), "{text}");
    assert!(text.contains("\"id\": \"L009\""), "{text}");
    assert!(text.contains("\"results\""), "{text}");
}

#[test]
fn lint_unreadable_root_exits_2_with_structured_errors() {
    // Exit 2 must be structurally distinguishable from a clean empty run:
    // the JSON document carries a non-empty `errors` array.
    let out = bin()
        .args([
            "lint",
            "--root",
            "/nonexistent-parsched-root",
            "--format",
            "json",
        ])
        .output()
        .expect("lint");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("\"schema\": \"parsched-lint/v1\""), "{text}");
    assert!(text.contains("\"errors\": [\n    \""), "{text}");
    assert!(text.contains("cannot read"), "{text}");
    // Clean runs keep the (empty) array, so consumers can always key off it.
    let clean = bin()
        .args(["lint", "--root", &lint_fixture("clean"), "--format", "json"])
        .output()
        .expect("lint");
    let clean_text = String::from_utf8(clean.stdout).expect("utf8");
    assert!(clean_text.contains("\"errors\": [\n  ]"), "{clean_text}");
}

#[test]
fn lint_explain_traces_a_reachability_path() {
    let out = bin()
        .args([
            "lint",
            "--root",
            &lint_fixture("l007"),
            "--explain",
            "L007",
            "first",
        ])
        .output()
        .expect("lint");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf8");
    // `step` is itself a root, so the shortest witness starts there.
    assert!(text.contains("Engine::step -> grow -> first"), "{text}");
}
