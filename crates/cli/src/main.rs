//! `parsched` — the experiment harness.
//!
//! Regenerates every table/figure of the reproduction (see DESIGN.md's
//! per-experiment index and EXPERIMENTS.md for recorded outputs).
//!
//! ```text
//! parsched list                     # list experiments
//! parsched exp f1 [--quick] [--csv] [--md] [--seed N]
//! parsched all  [--quick]           # run the full suite
//! parsched compare --m 8 --p 64 --alpha 0.5 --n 300 --load 0.9
//! parsched lint [--format json|sarif] [--explain L00X <symbol>] [paths...]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use parsched_analysis::experiments::{all_ids, run, ExpOptions};

fn usage() -> &'static str {
    "parsched — SPAA'14 'Intermediate Parallelizability' experiment harness

USAGE:
  parsched list                         list experiment ids and titles
  parsched exp <id> [FLAGS]             run one experiment (f1..f6, t1..t5, x2..x3)
  parsched all [FLAGS]                  run the whole suite
  parsched sweep [--jobs N] [ids...]    run experiments through the
                                        work-stealing sweep pool
                                        (default: whole suite; --jobs 0 =
                                        one worker per core, 1 = serial)
  parsched compare [OPTIONS]            ad-hoc policy comparison
  parsched gen [OPTIONS]                generate a workload as CSV on stdout
  parsched run [OPTIONS]                simulate a CSV instance with one policy
  parsched audit <trace.json> [OPTIONS] replay a recorded trace through the
                                        invariant-audit suite
  parsched bench-snapshot [OPTIONS]     engine throughput snapshot → JSON
  parsched adversary [OPTIONS]          seeded evolutionary search for hard
                                        instances (maximizes flow / OPT-LB)
                                        doubling as a strict dual-path
                                        engine fuzzer; see docs/TESTING.md
  parsched fleet [OPTIONS]              multi-tenant serving demo: N
                                        scheduling scenarios advance in
                                        slices on the shard pool via
                                        snapshot suspend/resume; output is
                                        byte-identical for every --jobs N
  parsched lint [OPTIONS] [paths...]    static analysis: determinism, float
                                        hygiene, registry contracts, and
                                        call-graph reachability (rules
                                        L001–L009, see docs/LINTS.md);
                                        --format human|json|sarif,
                                        --explain L00X <symbol> prints the
                                        offending call path

GEN OPTIONS:
  --kind poisson|batch|sawtooth|trap|mix   workload family (default poisson)
  --n <int> --m <int> --load <f> --alpha <f> --p <f>   family parameters

RUN OPTIONS:
  --instance <file>   CSV instance (as produced by gen); '-' for stdin
  --policy <name>     isrpt|psrpt|ssrpt|greedy|equi|laps[:β]|threshold:<θ>|setf
  --m <int>           processors (default 8)
  --speed <f>         resource augmentation factor (default 1)
  --audit <level>     run with the invariant auditor enabled:
                      off|final|sampled[:stride]|strict (default off)
  --trace <file>      also record the run as a replayable JSON trace
  --gantt <cols>      also print an ASCII Gantt chart
  --bracket           also bracket OPT and report the ratio interval
  --stream            memory-bounded streaming path over a lazy generator
                      instead of a CSV instance; memory is O(peak alive),
                      so --n 10000000 is fine. Takes --kind poisson|trap|
                      phases plus the gen family parameters (--n --m --load
                      --alpha --p), and reports flow quantiles, the peak
                      alive set, and peak RSS

AUDIT OPTIONS:
  --level <level>     final|sampled[:stride]|strict (default strict)

BENCH-SNAPSHOT OPTIONS:
  --out <file>    where to write the JSON (default BENCH_engine.json)
  --quick         drop the n = 100_000 rows and the n = 10⁷ streaming
                  measurement (CI smoke; the streaming fields become null)

ADVERSARY OPTIONS:
  --policy <p|all>     target policy token, or 'all' for the standard set
                       (default all)
  --budget <evals>     candidate evaluations per policy (default 200)
  --m <int>            processors (default 4)
  --jobs <N>           sweep-pool workers (0 = auto). Wall clock only:
                       results are byte-identical for every N
  --emit-corpus <dir>  write the elites (and any shrunk engine-failure
                       reproducers) as parsched-adv/v1 JSON into <dir>
  --corpus-top <K>     elites per policy to emit (default 2)
  --seed <N>           master search seed (default 0x5eed5eed)
  exit 0 = clean, 1 = engine failure discovered (reproducer emitted)

FLEET OPTIONS:
  --tenants <N>       scenarios to submit (default 12; seeded mix of
                      policies, machine counts, and engine modes)
  --cap <K>           max tenants holding engine state at once (default 8)
  --queue <Q>         FIFO overflow-queue depth; submissions beyond
                      cap + queue are shed with a reason (default: enough
                      for everyone)
  --slice <E>         engine events per tenant per round (default 16)
  --migrate           force every suspension through the parsched-snap/v1
                      text codec, as a cross-host migration would
  --jobs <N>          shard-pool workers (0 = auto). Wall clock only:
                      output is byte-identical for every N
  --seed <N>          tenant-generation seed (default 42)
  --json              machine-readable single-line report
  exit 0 = all tenants done, 1 = any shed or failed, 2 = usage error

LINT OPTIONS:
  --root <dir>        workspace root to analyze (default .)
  --format <fmt>      human (default) or json
  [paths...]          restrict to files under these workspace-relative
                      prefixes (e.g. crates/simcore)
  exit 0 = clean, 1 = violations or waiver problems, 2 = usage/IO error

FLAGS:
  --quick         small grids (seconds); default is the full grids
  --csv           also print tables as CSV
  --md            also print tables as markdown
  --seed <N>      RNG seed for randomized workloads (default 0x5eed5eed)

COMPARE OPTIONS:
  --m <int>       processors (default 8)
  --p <float>     max job size P (default 64)
  --alpha <f>     parallelizability exponent (default 0.5)
  --n <int>       number of jobs (default 300)
  --load <f>      offered load (default 0.9)
"
}

#[derive(Debug, Clone)]
struct Flags {
    quick: bool,
    csv: bool,
    md: bool,
    seed: u64,
    named: Vec<(String, String)>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        quick: false,
        csv: false,
        md: false,
        seed: ExpOptions::default().seed,
        named: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => flags.quick = true,
            "--csv" => flags.csv = true,
            "--md" => flags.md = true,
            "--seed" => {
                i += 1;
                let v = args.get(i).ok_or("--seed needs a value")?;
                flags.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--bracket" => flags.named.push(("bracket".to_string(), String::new())),
            "--stream" => flags.named.push(("stream".to_string(), String::new())),
            "--migrate" => flags.named.push(("migrate".to_string(), String::new())),
            "--json" => flags.named.push(("json".to_string(), String::new())),
            other if other.starts_with("--") => {
                let key = other.trim_start_matches("--").to_string();
                // Both `--audit strict` and `--audit=strict` are accepted.
                if let Some((k, v)) = key.split_once('=') {
                    flags.named.push((k.to_string(), v.to_string()));
                } else {
                    i += 1;
                    let v = args
                        .get(i)
                        .ok_or_else(|| format!("--{key} needs a value"))?;
                    flags.named.push((key, v.clone()));
                }
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
        i += 1;
    }
    Ok(flags)
}

impl Flags {
    fn get_str(&self, key: &str) -> Option<&str> {
        self.named
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.named
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    fn opts(&self) -> ExpOptions {
        ExpOptions {
            quick: self.quick,
            seed: self.seed,
        }
    }
}

fn print_result(res: &parsched_analysis::experiments::ExpResult, flags: &Flags) {
    println!("{}", res.render());
    if flags.md {
        for t in &res.tables {
            println!("markdown ({}):\n{}", t.title(), t.to_markdown());
        }
    }
    if flags.csv {
        for t in &res.tables {
            println!("csv ({}):\n{}", t.title(), t.to_csv());
        }
    }
}

/// `parsched sweep [--jobs N] [FLAGS] [ids...]` — run experiments through
/// the work-stealing sweep pool with an explicit worker count.
///
/// `--jobs 0` (the default) sizes the pool automatically; `--jobs 1`
/// forces the serial path, which must produce byte-identical output (the
/// pool commits results in input order — see `parsched_analysis::sweep`).
fn cmd_sweep(args: &[String]) -> Result<bool, String> {
    // Experiment ids may appear anywhere among the flags.
    let (ids, flag_args): (Vec<String>, Vec<String>) = args
        .iter()
        .cloned()
        .partition(|a| all_ids().contains(&a.as_str()));
    let flags = parse_flags(&flag_args)?;
    let jobs = flags
        .named
        .iter()
        .find(|(k, _)| k == "jobs")
        .map(|(_, v)| v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}")))
        .transpose()?
        .unwrap_or(0);
    parsched_analysis::set_sweep_jobs(jobs);
    let ids: Vec<&str> = if ids.is_empty() {
        all_ids().to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    let workers = parsched_analysis::Pool::current().workers_for(usize::MAX);
    eprintln!("sweep pool: {workers} worker(s)");
    let mut all_pass = true;
    for id in &ids {
        let start = std::time::Instant::now();
        let res = run(id, &flags.opts()).ok_or_else(|| {
            format!(
                "unknown experiment '{id}' (expected one of {})",
                all_ids().join(", ")
            )
        })?;
        print_result(&res, &flags);
        eprintln!(
            "{id}: {:.2}s on {workers} worker(s)",
            start.elapsed().as_secs_f64()
        );
        all_pass &= res.pass;
    }
    Ok(all_pass)
}

fn cmd_exp(id: &str, flags: &Flags) -> Result<bool, String> {
    let res = run(id, &flags.opts()).ok_or_else(|| {
        format!(
            "unknown experiment '{id}' (expected one of {})",
            all_ids().join(", ")
        )
    })?;
    print_result(&res, flags);
    Ok(res.pass)
}

fn cmd_all(flags: &Flags) -> bool {
    let mut all_pass = true;
    for id in all_ids() {
        match run(id, &flags.opts()) {
            Some(res) => {
                print_result(&res, flags);
                all_pass &= res.pass;
            }
            None => unreachable!("registry ids always resolve"),
        }
    }
    println!(
        "suite verdict: {}",
        if all_pass {
            "ALL SHAPES OK"
        } else {
            "SOME SHAPES MISMATCHED"
        }
    );
    all_pass
}

fn cmd_compare(flags: &Flags) -> Result<(), String> {
    use parsched::PolicyKind;
    use parsched_analysis::table::{fnum, Table};
    use parsched_opt::OptEstimate;
    use parsched_sim::simulate;
    use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};

    let m = flags.get_f64("m", 8.0);
    let p = flags.get_f64("p", 64.0);
    let alpha = flags.get_f64("alpha", 0.5);
    let n = flags.get_f64("n", 300.0) as usize;
    let load = flags.get_f64("load", 0.9);
    let sizes = SizeDist::LogUniform { p };
    let w = PoissonWorkload {
        n,
        rate: PoissonWorkload::rate_for_load(load, m, &sizes),
        sizes,
        alphas: AlphaDist::Fixed(alpha),
        seed: flags.seed,
    };
    let inst = w.generate().map_err(|e| e.to_string())?;
    let est = OptEstimate::bracket(&inst, m).map_err(|e| e.to_string())?;
    let mut table = Table::new(
        format!(
            "compare: m={m}, P={p}, α={alpha}, n={n}, load={load}, seed={}",
            flags.seed
        ),
        &["policy", "total flow", "mean flow", "max flow", "ratio ∈"],
    );
    for kind in PolicyKind::all_standard() {
        let out = simulate(&inst, &mut kind.build(), m).map_err(|e| e.to_string())?;
        table.push_row(vec![
            kind.name(),
            fnum(out.metrics.total_flow),
            fnum(out.metrics.mean_flow),
            fnum(out.metrics.max_flow),
            format!(
                "[{}, {}]",
                fnum(out.metrics.total_flow / est.upper),
                fnum(out.metrics.total_flow / est.lower)
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "  OPT bracket: [{:.1}, {:.1}] (UB witness: {})",
        est.lower, est.upper, est.upper_witness
    );
    if flags.csv {
        println!("{}", table.to_csv());
    }
    Ok(())
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    use parsched_sim::csv::instance_to_csv;
    use parsched_workloads::mix::{DatacenterMix, SawtoothWorkload};
    use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};
    use parsched_workloads::{batch::BatchWorkload, GreedyTrap};

    let kind = flags
        .named
        .iter()
        .find(|(k, _)| k == "kind")
        .map(|(_, v)| v.as_str())
        .unwrap_or("poisson");
    let n = flags.get_f64("n", 200.0) as usize;
    let m = flags.get_f64("m", 8.0);
    let load = flags.get_f64("load", 0.9);
    let alpha = flags.get_f64("alpha", 0.5);
    let p = flags.get_f64("p", 32.0);
    let instance = match kind {
        "poisson" => {
            let sizes = SizeDist::LogUniform { p };
            PoissonWorkload {
                n,
                rate: PoissonWorkload::rate_for_load(load, m, &sizes),
                sizes,
                alphas: AlphaDist::Fixed(alpha),
                seed: flags.seed,
            }
            .generate()
        }
        "batch" => BatchWorkload {
            n,
            sizes: SizeDist::LogUniform { p },
            alphas: AlphaDist::Fixed(alpha),
            seed: flags.seed,
        }
        .generate(),
        "sawtooth" => {
            SawtoothWorkload::crossing(m as usize, (n / (2 * m as usize)).max(1), alpha).generate()
        }
        "trap" => GreedyTrap::new(m as usize, alpha).instance(),
        "mix" => DatacenterMix {
            n,
            rate: flags.get_f64("rate", m / 4.0),
            p,
            seed: flags.seed,
        }
        .generate(),
        other => return Err(format!("unknown workload kind '{other}'")),
    }
    .map_err(|e| e.to_string())?;
    print!("{}", instance_to_csv(&instance));
    Ok(())
}

/// `parsched run --stream`: the memory-bounded engine path over a lazy
/// generator-backed source. No instance is ever materialized, so `--n` in
/// the tens of millions costs only the alive set.
fn cmd_run_stream(flags: &Flags) -> Result<(), String> {
    use parsched::PolicyKind;
    use parsched_analysis::table::fnum;
    use parsched_bench::peak_rss_bytes;
    use parsched_sim::{ArrivalSource, AuditLevel, Engine, EngineConfig, NullObserver};
    use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};
    use parsched_workloads::{
        GreedyTrap, PhaseFamily, PhaseStreamSource, PoissonSource, TrapStreamSource,
    };

    let kind_name = flags
        .named
        .iter()
        .find(|(k, _)| k == "kind")
        .map(|(_, v)| v.as_str())
        .unwrap_or("poisson");
    let n = flags.get_f64("n", 100_000.0) as usize;
    let m = flags.get_f64("m", 8.0);
    let load = flags.get_f64("load", 0.9);
    let alpha = flags.get_f64("alpha", 0.5);
    let p = flags.get_f64("p", 64.0);
    let policy_kind: PolicyKind = flags
        .named
        .iter()
        .find(|(k, _)| k == "policy")
        .map(|(_, v)| v.as_str())
        .unwrap_or("isrpt")
        .parse()?;
    let speed = flags.get_f64("speed", 1.0);
    let audit: AuditLevel = flags
        .named
        .iter()
        .find(|(k, _)| k == "audit")
        .map(|(_, v)| v.parse())
        .transpose()?
        .unwrap_or(AuditLevel::Off);

    // Each family sizes itself so the stream totals ≈ n jobs.
    let mut source: Box<dyn ArrivalSource> = match kind_name {
        "poisson" => {
            let sizes = SizeDist::LogUniform { p };
            Box::new(PoissonSource::new(PoissonWorkload {
                n,
                rate: PoissonWorkload::rate_for_load(load, m, &sizes),
                sizes,
                alphas: AlphaDist::Fixed(alpha),
                seed: flags.seed,
            }))
        }
        "trap" => {
            let trap = GreedyTrap::new(m as usize, alpha.clamp(0.05, 0.95));
            let fixed = trap.num_long() + trap.num_phase1_units();
            let x = (n.saturating_sub(fixed).max(1) as f64 / trap.k() as f64).max(1.0);
            Box::new(TrapStreamSource::new(trap.with_stream_duration(x)))
        }
        "phases" => {
            let m_even = ((m as usize).max(2) + 1) & !1;
            let fam = PhaseFamily::new(m_even, alpha.min(0.99), p.max(4.0));
            let phase_jobs: usize = (0..fam.num_phases())
                .map(|i| m_even / 2 + m_even * fam.short_waves(i))
                .sum();
            let len = (n.saturating_sub(phase_jobs) / m_even).max(1);
            Box::new(PhaseStreamSource::new(fam.with_stream_len(len)))
        }
        other => return Err(format!("unknown --kind '{other}' for --stream")),
    };

    let mut policy = policy_kind.build();
    let mut obs = NullObserver;
    let cfg = EngineConfig::new(m)
        .with_speed(speed)
        .with_audit(audit)
        .with_streaming(true)
        .with_max_events(u64::MAX);
    let outcome = Engine::new(cfg, policy.as_mut(), source.as_mut(), &mut obs)
        .run_streaming()
        .map_err(|e| e.to_string())?;
    let mm = &outcome.metrics;
    println!(
        "{} on m={m}{} [streaming {kind_name}]: n={}, total flow={}, mean={}, max={}, \
         makespan={}, stretch Σ={} max={}, events={}",
        policy_kind.name(),
        // Display-only: was --speed left at its (exact, parsed) default?
        if !parsched_speedup::exact_eq(speed, 1.0) {
            format!(" (speed {speed})")
        } else {
            String::new()
        },
        mm.num_jobs,
        fnum(mm.total_flow),
        fnum(mm.mean_flow),
        fnum(mm.max_flow),
        fnum(mm.makespan),
        fnum(mm.total_stretch),
        fnum(mm.max_stretch),
        mm.events
    );
    let q = &outcome.quantiles;
    println!(
        "  flow quantiles (sketch, ≤4.4% rel err): p50={} p90={} p99={}",
        fnum(q.quantile(0.5)),
        fnum(q.quantile(0.9)),
        fnum(q.quantile(0.99))
    );
    print!(
        "  admitted={} peak alive={} (resident state is O(peak alive))",
        outcome.admitted, outcome.peak_alive
    );
    match peak_rss_bytes() {
        Some(rss) => println!(", peak RSS={:.1} MiB", rss as f64 / (1024.0 * 1024.0)),
        None => println!(),
    }
    if let Some(report) = &outcome.audit {
        println!("  {report}");
    }
    Ok(())
}

fn cmd_run(flags: &Flags) -> Result<(), String> {
    use parsched::PolicyKind;
    use parsched_analysis::gantt::render_gantt;
    use parsched_analysis::table::fnum;
    use parsched_opt::OptEstimate;
    use parsched_sim::csv::instance_from_csv;
    use parsched_sim::trace::{record_run_with_config, trace_to_json};
    use parsched_sim::{AllocationTrace, AuditLevel, Engine, EngineConfig, StaticSource};

    if flags.named.iter().any(|(k, _)| k == "stream") {
        return cmd_run_stream(flags);
    }
    let path = flags
        .named
        .iter()
        .find(|(k, _)| k == "instance")
        .map(|(_, v)| v.clone())
        .ok_or("run needs --instance <file>")?;
    let text = if path == "-" {
        use std::io::Read as _;
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| e.to_string())?;
        s
    } else {
        std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?
    };
    let instance = instance_from_csv(&text).map_err(|e| e.to_string())?;
    let kind: PolicyKind = flags
        .named
        .iter()
        .find(|(k, _)| k == "policy")
        .map(|(_, v)| v.as_str())
        .unwrap_or("isrpt")
        .parse()?;
    let m = flags.get_f64("m", 8.0);
    let speed = flags.get_f64("speed", 1.0);
    let audit: AuditLevel = flags
        .named
        .iter()
        .find(|(k, _)| k == "audit")
        .map(|(_, v)| v.parse())
        .transpose()?
        .unwrap_or(AuditLevel::Off);
    let mut policy = kind.build();
    let mut source = StaticSource::new(&instance);
    let mut trace = AllocationTrace::new();
    let outcome = Engine::new(
        EngineConfig::new(m).with_speed(speed).with_audit(audit),
        &mut policy,
        &mut source,
        &mut trace,
    )
    .run()
    .map_err(|e| e.to_string())?;
    let mm = &outcome.metrics;
    println!(
        "{} on m={m}{}: n={}, total flow={}, mean={}, max={}, makespan={}, stretch Σ={} max={}, events={}",
        kind.name(),
        if !parsched_speedup::exact_eq(speed, 1.0) { format!(" (speed {speed})") } else { String::new() },
        mm.num_jobs,
        fnum(mm.total_flow),
        fnum(mm.mean_flow),
        fnum(mm.max_flow),
        fnum(mm.makespan),
        fnum(mm.total_stretch),
        fnum(mm.max_stretch),
        mm.events
    );
    if let Some(report) = &outcome.audit {
        println!("  {report}");
    }
    if let Some((_, path)) = flags.named.iter().find(|(k, _)| k == "trace") {
        // The recording observer consumes the allocation stream (exhaustive
        // path), so the trace is produced by a second, deterministic run
        // with the same configuration.
        let (rec, _) = record_run_with_config(
            &instance,
            kind.build().as_mut(),
            EngineConfig::new(m).with_speed(speed),
        )
        .map_err(|e| e.to_string())?;
        std::fs::write(path, trace_to_json(&rec)).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "  wrote trace {path} ({} events; replay with `parsched audit {path}`)",
            rec.events.len()
        );
    }
    if let Some((_, cols)) = flags.named.iter().find(|(k, _)| k == "gantt") {
        let width: usize = cols.parse().unwrap_or(72).clamp(8, 400);
        println!(
            "\n{}",
            render_gantt(trace.segments(), mm.makespan.max(1e-9), width, 1.0)
        );
    }
    if flags.named.iter().any(|(k, _)| k == "bracket") {
        let est = OptEstimate::bracket(&instance, m).map_err(|e| e.to_string())?;
        let (lo, hi) = est.ratio_interval(mm.total_flow);
        println!(
            "OPT ∈ [{}, {}] (witness {}) ⇒ ratio ∈ [{}, {}]",
            fnum(est.lower),
            fnum(est.upper),
            est.upper_witness,
            fnum(lo),
            fnum(hi)
        );
    }
    Ok(())
}

fn cmd_audit(path: &str, flags: &Flags) -> Result<bool, String> {
    use parsched_analysis::table::fnum;
    use parsched_sim::trace::{replay, trace_from_json};
    use parsched_sim::{AuditLevel, SimError};

    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = trace_from_json(&text).map_err(|e| e.to_string())?;
    let level: AuditLevel = flags
        .named
        .iter()
        .find(|(k, _)| k == "level")
        .map(|(_, v)| v.parse())
        .transpose()?
        .unwrap_or(AuditLevel::Strict);
    println!(
        "replaying {path}: policy={}, m={}, speed={}, {} records{}",
        trace.policy,
        trace.m,
        trace.speed,
        trace.events.len(),
        if trace.recorded.is_some() {
            ", recorded metrics attached"
        } else {
            ""
        }
    );
    match replay(&trace, level) {
        Ok(out) => {
            println!("audit PASS: {}", out.report);
            let mm = &out.metrics;
            println!(
                "  replayed: n={}, total flow={}, mean={}, max={}, makespan={}",
                mm.num_jobs,
                fnum(mm.total_flow),
                fnum(mm.mean_flow),
                fnum(mm.max_flow),
                fnum(mm.makespan)
            );
            Ok(true)
        }
        Err(SimError::AuditFailed { violation }) => {
            eprintln!("audit FAIL: {violation}");
            Ok(false)
        }
        Err(e) => Err(e.to_string()),
    }
}

fn cmd_bench_snapshot(flags: &Flags) -> Result<(), String> {
    use parsched::PolicyKind;
    use parsched_bench::{
        mixed_alpha_fixture, overload_fixture, poisson_fixture, poisson_stream_fixture,
        timed_audited_run, timed_run, timed_run_cfg, timed_streaming_run,
    };
    use parsched_sim::{AllocationStability, AuditLevel, EngineConfig, EventQueueKind};

    struct Row {
        policy: String,
        fixture: &'static str,
        mode: &'static str,
        n: usize,
        m: f64,
        events: u64,
        seconds: f64,
        events_per_sec: f64,
    }

    let out_path = flags
        .named
        .iter()
        .find(|(k, _)| k == "out")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let sizes: &[usize] = if flags.quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let m = 8.0;

    // The streaming large-n measurement runs FIRST: `VmHWM` is a
    // whole-process high-water mark, so the in-memory fixtures below would
    // otherwise inflate it and the recorded RSS would say nothing about
    // the streaming path.
    let (streaming_wall_n1e7, streaming_rss_n1e7) = if flags.quick {
        (None, None)
    } else {
        let n = 10_000_000usize;
        eprintln!("  streaming n=10^7 (runs first so peak RSS reflects the streaming path)…");
        let mut src = poisson_stream_fixture(n, 0.9, m);
        let mut policy = PolicyKind::IntermediateSrpt.build();
        let s = timed_streaming_run(&mut src, policy.as_mut(), m, AuditLevel::Off);
        eprintln!(
            "  {:<22} n={n:<8} {:<11} {:>12.0} events/s, {:.1}s, peak alive {}, RSS {}",
            "Intermediate-SRPT",
            "streaming",
            s.events_per_sec,
            s.seconds,
            s.peak_alive,
            s.peak_rss_bytes
                .map(|b| format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)))
                .unwrap_or_else(|| "n/a".to_string())
        );
        (Some(s.seconds), s.peak_rss_bytes)
    };
    let kinds = [
        PolicyKind::IntermediateSrpt,
        PolicyKind::SequentialSrpt,
        PolicyKind::ParallelSrpt,
        PolicyKind::Equi,
        PolicyKind::Threshold(2.0),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        let inst = poisson_fixture(n, 0.9, m);
        for kind in &kinds {
            let mut policy = kind.build();
            let mode = match policy.stability() {
                AllocationStability::SrptPrefix => "incremental",
                AllocationStability::General => "exhaustive",
            };
            let s = timed_run(&inst, policy.as_mut(), m, false);
            eprintln!(
                "  {:<22} n={n:<7} {mode:<11} {:>12.0} events/s",
                kind.name(),
                s.events_per_sec
            );
            rows.push(Row {
                policy: kind.name(),
                fixture: "poisson-0.9",
                mode,
                n,
                m,
                events: s.events,
                seconds: s.seconds,
                events_per_sec: s.events_per_sec,
            });
        }
        // Fast-loop control arm: the incremental rows above run the
        // monomorphized fast event loop (the default); this row pins the
        // same binary, engine, and fixture with `fast_loop` off, so the
        // row pair differences exactly the dispatch and bookkeeping the
        // specialization removes (docs/PERF.md §8).
        {
            let mut policy = PolicyKind::IntermediateSrpt.build();
            let s = timed_run_cfg(
                &inst,
                policy.as_mut(),
                EngineConfig::new(m).with_fast_loop(false),
            );
            eprintln!(
                "  {:<22} n={n:<7} {:<11} {:>12.0} events/s",
                "Intermediate-SRPT", "generic-loop", s.events_per_sec
            );
            rows.push(Row {
                policy: "Intermediate-SRPT".to_string(),
                fixture: "poisson-0.9",
                mode: "generic-loop",
                n,
                m,
                events: s.events,
                seconds: s.seconds,
                events_per_sec: s.events_per_sec,
            });
        }
        // Kernel A/B baseline arm: identical engine and fixture, but jobs
        // admitted with the `powf_reference` kernel so every Γ evaluation
        // pays the per-call `powf` cost the classified kernel replaced.
        // The incremental-row / this-row ratio at n = 100_000 is the
        // `kernel_speedup_n1e5` headline field.
        {
            let mut policy = PolicyKind::IntermediateSrpt.build();
            let s = timed_run_cfg(
                &inst,
                policy.as_mut(),
                EngineConfig::new(m).with_pow_kernel(false),
            );
            eprintln!(
                "  {:<22} n={n:<7} {:<11} {:>12.0} events/s",
                "Intermediate-SRPT", "powf-baseline", s.events_per_sec
            );
            rows.push(Row {
                policy: "Intermediate-SRPT".to_string(),
                fixture: "poisson-0.9",
                mode: "powf-baseline",
                n,
                m,
                events: s.events,
                seconds: s.seconds,
                events_per_sec: s.events_per_sec,
            });
        }
        // Streaming path on the same fixture: same event loop, free-list
        // arena and constant-size sink instead of growing vectors — its
        // throughput should sit within noise of the incremental row above.
        {
            let mut src = poisson_stream_fixture(n, 0.9, m);
            let mut policy = PolicyKind::IntermediateSrpt.build();
            let s = timed_streaming_run(&mut src, policy.as_mut(), m, AuditLevel::Off);
            eprintln!(
                "  {:<22} n={n:<7} {:<11} {:>12.0} events/s",
                "Intermediate-SRPT", "streaming", s.events_per_sec
            );
            rows.push(Row {
                policy: "Intermediate-SRPT".to_string(),
                fixture: "poisson-0.9",
                mode: "streaming",
                n,
                m,
                events: s.events,
                seconds: s.seconds,
                events_per_sec: s.events_per_sec,
            });
        }
        // Audit-layer overhead: the same fixture and policy with the
        // invariant auditor at its sampled (production) and strict
        // (every-event) levels. The acceptance bar is sampled ≤ 2× the
        // unaudited throughput.
        if n == 10_000 {
            for (mode, level) in [
                ("audited-sampled", AuditLevel::Sampled(64)),
                ("audited-strict", AuditLevel::Strict),
            ] {
                let mut policy = PolicyKind::IntermediateSrpt.build();
                let s = timed_audited_run(&inst, policy.as_mut(), m, level);
                eprintln!(
                    "  {:<22} n={n:<7} {mode:<11} {:>12.0} events/s",
                    "Intermediate-SRPT", s.events_per_sec
                );
                rows.push(Row {
                    policy: "Intermediate-SRPT".to_string(),
                    fixture: "poisson-0.9",
                    mode,
                    n,
                    m,
                    events: s.events,
                    seconds: s.seconds,
                    events_per_sec: s.events_per_sec,
                });
            }
        }
        // Legacy oracle (full reassignment every event) for the headline
        // speed-up ratio. Quadratic per run, so cap it at n = 10_000.
        if n <= 10_000 {
            let mut policy = PolicyKind::IntermediateSrpt.build();
            let s = timed_run(&inst, policy.as_mut(), m, true);
            eprintln!(
                "  {:<22} n={n:<7} {:<11} {:>12.0} events/s",
                "Intermediate-SRPT", "legacy", s.events_per_sec
            );
            rows.push(Row {
                policy: "Intermediate-SRPT".to_string(),
                fixture: "poisson-0.9",
                mode: "legacy",
                n,
                m,
                events: s.events,
                seconds: s.seconds,
                events_per_sec: s.events_per_sec,
            });
        }
        // Mixed-α fixture: per-job α from {0.25, 0.5, 0.75, 0.37}, the
        // workload that actually drives the multi-class Scan path (class
        // registry + per-class Γ rate cache + grouped gamma_by_class).
        // Single-α fixtures collapse to one kernel class.
        {
            let mixed = mixed_alpha_fixture(n, 0.9, m);
            let mut policy = PolicyKind::IntermediateSrpt.build();
            let s = timed_run(&mixed, policy.as_mut(), m, false);
            eprintln!(
                "  {:<22} n={n:<7} {:<11} {:>12.0} events/s (mixed-alpha)",
                "Intermediate-SRPT", "incremental", s.events_per_sec
            );
            rows.push(Row {
                policy: "Intermediate-SRPT".to_string(),
                fixture: "mixed-alpha-0.9",
                mode: "incremental",
                n,
                m,
                events: s.events,
                seconds: s.seconds,
                events_per_sec: s.events_per_sec,
            });
            if n <= 10_000 {
                let mut policy = PolicyKind::IntermediateSrpt.build();
                let s = timed_run(&mixed, policy.as_mut(), m, true);
                eprintln!(
                    "  {:<22} n={n:<7} {:<11} {:>12.0} events/s (mixed-alpha)",
                    "Intermediate-SRPT", "legacy", s.events_per_sec
                );
                rows.push(Row {
                    policy: "Intermediate-SRPT".to_string(),
                    fixture: "mixed-alpha-0.9",
                    mode: "legacy",
                    n,
                    m,
                    events: s.events,
                    seconds: s.seconds,
                    events_per_sec: s.events_per_sec,
                });
            }
        }
        // Overload-heavy fixture: the alive set grows ~linearly with n, so
        // this is where the O(n) vs O(log n) per-event separation shows.
        let over = overload_fixture(n, m);
        // Binary-heap control arm for the event queue on the densest
        // event stream; the default incremental row below is the
        // calendar arm, so the two rows difference the queue cost.
        {
            let mut policy = PolicyKind::IntermediateSrpt.build();
            let s = timed_run_cfg(
                &over,
                policy.as_mut(),
                EngineConfig::new(m).with_event_queue(EventQueueKind::Heap),
            );
            eprintln!(
                "  {:<22} n={n:<7} {:<11} {:>12.0} events/s (overload)",
                "Intermediate-SRPT", "heap-queue", s.events_per_sec
            );
            rows.push(Row {
                policy: "Intermediate-SRPT".to_string(),
                fixture: "poisson-1.5",
                mode: "heap-queue",
                n,
                m,
                events: s.events,
                seconds: s.seconds,
                events_per_sec: s.events_per_sec,
            });
        }
        let mut policy = PolicyKind::IntermediateSrpt.build();
        let s = timed_run(&over, policy.as_mut(), m, false);
        eprintln!(
            "  {:<22} n={n:<7} {:<11} {:>12.0} events/s (overload)",
            "Intermediate-SRPT", "incremental", s.events_per_sec
        );
        rows.push(Row {
            policy: "Intermediate-SRPT".to_string(),
            fixture: "poisson-1.5",
            mode: "incremental",
            n,
            m,
            events: s.events,
            seconds: s.seconds,
            events_per_sec: s.events_per_sec,
        });
        if n <= 10_000 {
            let mut policy = PolicyKind::IntermediateSrpt.build();
            let s = timed_run(&over, policy.as_mut(), m, true);
            eprintln!(
                "  {:<22} n={n:<7} {:<11} {:>12.0} events/s (overload)",
                "Intermediate-SRPT", "legacy", s.events_per_sec
            );
            rows.push(Row {
                policy: "Intermediate-SRPT".to_string(),
                fixture: "poisson-1.5",
                mode: "legacy",
                n,
                m,
                events: s.events,
                seconds: s.seconds,
                events_per_sec: s.events_per_sec,
            });
        }
    }

    let pick_rate = |fixture: &str, mode: &str, n: usize| {
        rows.iter()
            .find(|r| {
                r.policy == "Intermediate-SRPT"
                    && r.fixture == fixture
                    && r.mode == mode
                    && r.n == n
            })
            .map(|r| r.events_per_sec)
    };
    let ratio = |fixture: &str| match (
        pick_rate(fixture, "incremental", 10_000),
        pick_rate(fixture, "legacy", 10_000),
    ) {
        (Some(inc), Some(leg)) if leg > 0.0 => inc / leg,
        _ => f64::NAN,
    };
    let speedup = ratio("poisson-0.9");
    let overload_speedup = ratio("poisson-1.5");
    let mixed_alpha_speedup = ratio("mixed-alpha-0.9");
    // Event-queue A/B on the overload fixture: calendar arm (the default
    // incremental row) over the binary-heap control arm. ≥ ~1.0 is the
    // acceptance bar — the calendar must not lag the heap it replaces.
    let queue_ratio = match (
        pick_rate("poisson-1.5", "incremental", 10_000),
        pick_rate("poisson-1.5", "heap-queue", 10_000),
    ) {
        (Some(cal), Some(heap)) if heap > 0.0 => cal / heap,
        _ => f64::NAN,
    };
    // Audit overhead: unaudited / audited throughput at n = 10_000
    // (≥ 1; the acceptance bar for the sampled level is ≤ 2).
    let audit_overhead = |mode: &str| {
        let pick = |m: &str| {
            rows.iter()
                .find(|r| {
                    r.policy == "Intermediate-SRPT"
                        && r.fixture == "poisson-0.9"
                        && r.mode == m
                        && r.n == 10_000
                })
                .map(|r| r.events_per_sec)
        };
        match (pick("incremental"), pick(mode)) {
            (Some(base), Some(audited)) if audited > 0.0 => base / audited,
            _ => f64::NAN,
        }
    };
    let sampled_overhead = audit_overhead("audited-sampled");
    let strict_overhead = audit_overhead("audited-strict");
    // Kernel speed-up, measured per evaluation: 10^5 Γ evaluations on
    // shares spanning (1, m] — the supra-knee domain where the power law
    // actually evaluates — through the classified kernel vs per-call
    // `powf`, best of 7 passes each. This is what the kernel delivers per
    // call; the *engine-level* effect is the incremental vs powf-baseline
    // row pair (`kernel_engine_ratio_n1e5` below): Γ evaluations are a
    // few percent of event cost on these fixtures, so that ratio sits
    // near 1.0 by design. See docs/PERF.md §6 for the cost model.
    let (kernel_speedup_n1e5, kernel_eval_ns, powf_eval_ns) = {
        use parsched_speedup::PowKernel;
        let pts = 100_000usize;
        let xs: Vec<f64> = (0..pts)
            .map(|i| 1.0 + (i as f64 + 0.5) * (m - 1.0) / pts as f64)
            .collect();
        let alpha = 0.5; // the snapshot fixture's α
                         // The engine loads kernels from job records, so α and the
                         // classification are runtime data there; black_box the kernel to
                         // keep LLVM from constant-folding `powf(x, 0.5)` into the very
                         // sqrt the kernel arm is being compared against.
        let time_evals = |k: PowKernel| {
            let k = std::hint::black_box(k);
            let mut best = f64::INFINITY;
            for _ in 0..7 {
                let start = std::time::Instant::now();
                let mut acc = 0.0;
                for &x in &xs {
                    acc += k.eval(std::hint::black_box(x));
                }
                std::hint::black_box(acc);
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        };
        let t_powf = time_evals(PowKernel::powf_reference(alpha));
        let t_kernel = time_evals(PowKernel::new(alpha));
        (
            t_powf / t_kernel,
            t_kernel / pts as f64 * 1e9,
            t_powf / pts as f64 * 1e9,
        )
    };
    eprintln!(
        "  kernel eval: {kernel_eval_ns:.1} ns vs powf {powf_eval_ns:.1} ns \
         ({kernel_speedup_n1e5:.1}x over 10^5 evaluations, α = 0.5)"
    );
    // Engine-level kernel A/B at n = 100_000 (None in --quick runs, which
    // stop at n = 10_000).
    let kernel_engine_ratio_n1e5 = {
        let pick = |mode: &str| {
            rows.iter()
                .find(|r| {
                    r.policy == "Intermediate-SRPT"
                        && r.fixture == "poisson-0.9"
                        && r.mode == mode
                        && r.n == 100_000
                })
                .map(|r| r.events_per_sec)
        };
        match (pick("incremental"), pick("powf-baseline")) {
            (Some(on), Some(off)) if off > 0.0 => Some(on / off),
            _ => None,
        }
    };
    // Fast-loop A/B: specialized loop over the generic-loop control arm,
    // same binary and fixture. The one-shot rows above record both arms
    // for the table, but the headline *ratio* keys are measured here as
    // an interleaved best-of-5 pair — single-shot wall clocks on a busy
    // host swing ±20%, and a CI floor needs the stable within-run ratio,
    // not the difference of two noisy one-shots. The quick-mode key
    // (`stable_load_fastpath_speedup`, n = 10_000) is what the CI
    // bench-smoke floor guards; the n = 100_000 key is the full-run
    // headline (null in --quick).
    let fastpath_ab = |n: usize| {
        let inst = poisson_fixture(n, 0.9, m);
        let mut best_fast = f64::INFINITY;
        let mut best_generic = f64::INFINITY;
        for _ in 0..5 {
            let mut p = PolicyKind::IntermediateSrpt.build();
            let f = timed_run_cfg(&inst, p.as_mut(), EngineConfig::new(m));
            let mut p = PolicyKind::IntermediateSrpt.build();
            let g = timed_run_cfg(
                &inst,
                p.as_mut(),
                EngineConfig::new(m).with_fast_loop(false),
            );
            best_fast = best_fast.min(f.seconds);
            best_generic = best_generic.min(g.seconds);
        }
        best_generic / best_fast
    };
    let stable_load_fastpath_speedup = Some(fastpath_ab(10_000));
    let isrpt_fastpath_speedup_n1e5 = if flags.quick {
        None
    } else {
        Some(fastpath_ab(100_000))
    };
    if let Some(s) = stable_load_fastpath_speedup {
        eprintln!(
            "  fast loop vs generic loop: {s:.2}x at n=10^4{}",
            isrpt_fastpath_speedup_n1e5
                .map(|s5| format!(", {s5:.2}x at n=10^5"))
                .unwrap_or_default()
        );
    }
    // Per-phase hot-path profile (`hotpath` builds only): one profiled
    // pass per arm on the stable n = 10^4 fixture. Stamping costs ~2
    // clock reads per phase, so these numbers compare phases *between
    // arms*; the unprofiled rows above are the throughput of record.
    #[cfg(feature = "hotpath")]
    let hotpath_ns: Option<String> = {
        use parsched_sim::{Engine, NullObserver, StaticSource};
        let inst = poisson_fixture(10_000, 0.9, m);
        let profile = |fast: bool| {
            let cfg = EngineConfig::new(m)
                .with_fast_loop(fast)
                .with_hotpath_profile(true);
            let mut policy = PolicyKind::IntermediateSrpt.build();
            let mut src = StaticSource::new(&inst);
            let mut obs = NullObserver;
            let mut eng = Engine::new(cfg, policy.as_mut(), &mut src, &mut obs);
            eng.run_loop().expect("profiled run");
            let hp = eng.hotpath_totals();
            let (queue, refresh, metrics, dispatch) = hp.per_event();
            format!(
                "{{\"queue\": {queue:.1}, \"refresh\": {refresh:.1}, \
                 \"metrics\": {metrics:.1}, \"dispatch\": {dispatch:.1}, \
                 \"events\": {}}}",
                hp.events
            )
        };
        let fast = profile(true);
        let generic = profile(false);
        Some(format!(
            "{{\"fixture\": \"poisson-0.9 n=10000\", \"unit\": \"ns/event\", \
             \"fast\": {fast}, \"generic\": {generic}}}"
        ))
    };
    #[cfg(not(feature = "hotpath"))]
    let hotpath_ns: Option<String> = None;
    // Sweep-pool scaling: a 32-run Intermediate-SRPT grid (n = 2_000
    // Poisson runs, distinct seeds) through the work-stealing pool at 1
    // vs 8 workers, each worker recycling one set of engine buffers.
    // Reported as serial-time / 8-worker-time; on a single-core host
    // this sits near 1.0 — read it against `host_cores`.
    let (sweep_scaling_8c, host_cores) = {
        use parsched_analysis::{simulate_audited_reusing, Pool};
        use parsched_sim::EngineBuffers;
        use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};
        let run_sweep = |jobs: usize| {
            let seeds: Vec<u64> = (0..32).collect();
            let start = std::time::Instant::now();
            let flows = Pool::new(jobs).map_with(EngineBuffers::new, seeds, |bufs, seed| {
                let sizes = SizeDist::LogUniform { p: 32.0 };
                let w = PoissonWorkload {
                    n: 2_000,
                    rate: PoissonWorkload::rate_for_load(0.9, m, &sizes),
                    sizes,
                    alphas: AlphaDist::Fixed(0.5),
                    seed,
                };
                let inst = w.generate().expect("sweep fixture");
                let mut policy = PolicyKind::IntermediateSrpt.build();
                let (out, next) = simulate_audited_reusing(
                    std::mem::take(bufs),
                    &inst,
                    policy.as_mut(),
                    m,
                    AuditLevel::Off,
                );
                *bufs = next;
                out.expect("sweep run").metrics.total_flow
            });
            (start.elapsed().as_secs_f64(), flows)
        };
        let (t_serial, serial_flows) = run_sweep(1);
        let (t_pool8, pool_flows) = run_sweep(8);
        // The scaling number is only meaningful if the pool is invisible
        // in the results — the ordering guarantee, checked bit-for-bit.
        for (a, b) in serial_flows.iter().zip(&pool_flows) {
            assert_eq!(a.to_bits(), b.to_bits(), "pool diverged from serial sweep");
        }
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        eprintln!(
            "  sweep pool: serial {t_serial:.3}s vs 8 workers {t_pool8:.3}s \
             ({:.2}x on {cores} core(s))",
            t_serial / t_pool8
        );
        (t_serial / t_pool8, cores)
    };

    // Hand-rolled JSON: the offline serde shim only type-checks derives,
    // it does not serialize.
    // Measurement provenance: which compiler and opt-level produced the
    // binary (baked in at build time), and which commit it measured
    // (read at run time; null outside a git checkout). A snapshot from a
    // debug build or a dirty toolchain must be recognizable as such.
    let git_commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"parsched-bench-snapshot/v1\",\n");
    json.push_str(&format!(
        "  \"rustc_version\": \"{}\",\n",
        env!("PARSCHED_RUSTC_VERSION").replace('"', "'")
    ));
    json.push_str(&format!(
        "  \"opt_level\": \"{}\",\n",
        env!("PARSCHED_OPT_LEVEL")
    ));
    json.push_str(&format!(
        "  \"git_commit\": {},\n",
        git_commit
            .map(|c| format!("\"{}\"", c.replace('"', "'")))
            .unwrap_or_else(|| "null".to_string())
    ));
    json.push_str(
        "  \"fixture\": \"PoissonWorkload, alpha=0.5, sizes log-uniform [1,32], seed 0xbe9c; \
         poisson-0.9 = load 0.9, poisson-1.5 = overload load 1.5, mixed-alpha-0.9 = load 0.9 \
         with per-job alpha from {0.25, 0.5, 0.75, 0.37}\",\n",
    );
    json.push_str(&format!(
        "  \"isrpt_speedup_vs_legacy_n10000\": {:.2},\n",
        speedup
    ));
    json.push_str(&format!(
        "  \"isrpt_overload_speedup_vs_legacy_n10000\": {:.2},\n",
        overload_speedup
    ));
    json.push_str(&format!(
        "  \"isrpt_mixed_alpha_speedup_vs_legacy_n10000\": {:.2},\n",
        mixed_alpha_speedup
    ));
    json.push_str(&format!(
        "  \"queue_calendar_vs_heap_overload_n10000\": {:.2},\n",
        queue_ratio
    ));
    json.push_str(&format!(
        "  \"audit_sampled_overhead_n10000\": {:.2},\n",
        sampled_overhead
    ));
    json.push_str(&format!(
        "  \"audit_strict_overhead_n10000\": {:.2},\n",
        strict_overhead
    ));
    json.push_str(&format!(
        "  \"kernel_speedup_n1e5\": {kernel_speedup_n1e5:.2},\n"
    ));
    json.push_str(&format!("  \"kernel_eval_ns\": {kernel_eval_ns:.2},\n"));
    json.push_str(&format!("  \"powf_eval_ns\": {powf_eval_ns:.2},\n"));
    json.push_str(&format!(
        "  \"kernel_engine_ratio_n1e5\": {},\n",
        kernel_engine_ratio_n1e5
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "null".to_string())
    ));
    json.push_str(&format!(
        "  \"stable_load_fastpath_speedup\": {},\n",
        stable_load_fastpath_speedup
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "null".to_string())
    ));
    json.push_str(&format!(
        "  \"isrpt_fastpath_speedup_n1e5\": {},\n",
        isrpt_fastpath_speedup_n1e5
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "null".to_string())
    ));
    json.push_str(&format!(
        "  \"hotpath_ns\": {},\n",
        hotpath_ns.as_deref().unwrap_or("null")
    ));
    json.push_str(&format!("  \"sweep_scaling_8c\": {sweep_scaling_8c:.2},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    // Large-n streaming acceptance numbers: wall-clock and peak RSS for
    // the n = 10⁷ Poisson run on the streaming path (null in --quick).
    json.push_str(&format!(
        "  \"streaming_wall_n1e7\": {},\n",
        streaming_wall_n1e7
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "null".to_string())
    ));
    json.push_str(&format!(
        "  \"streaming_rss_n1e7\": {},\n",
        streaming_rss_n1e7
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".to_string())
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"fixture\": \"{}\", \"mode\": \"{}\", \"n\": {}, \
             \"m\": {}, \"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}}}{}\n",
            r.policy,
            r.fixture,
            r.mode,
            r.n,
            r.m,
            r.events,
            r.seconds,
            r.events_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "wrote {out_path} ({} rows); Intermediate-SRPT incremental/legacy speed-up at \
         n=10_000: {:.1}x (load 0.9), {:.1}x (overload), {:.1}x (mixed-alpha); \
         fast loop vs generic: {}; calendar/heap queue on overload: {:.2}x; \
         audit overhead: {:.2}x sampled, {:.2}x strict",
        rows.len(),
        speedup,
        overload_speedup,
        mixed_alpha_speedup,
        stable_load_fastpath_speedup
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "n/a".to_string()),
        queue_ratio,
        sampled_overhead,
        strict_overhead
    );
    Ok(())
}

/// `parsched lint [--root dir] [--format human|json|sarif]
/// [--explain L00X <symbol>] [paths...]`.
///
/// Returns `Ok(true)` when the tree is clean, `Ok(false)` on violations or
/// `parsched adversary` — the seeded evolutionary hard-instance search
/// (see `crates/adversary`). One search per target policy; everything on
/// stdout (trajectories, failures, the t5-style summary table, corpus
/// entries) is a deterministic function of `(--policy, --budget, --seed,
/// --m)` — `--jobs` only changes wall clock. Returns `Ok(false)` when
/// the strict dual-path fuzz pass discovered an engine failure (exit 1)
/// so CI fails loudly on a fresh reproducer.
fn cmd_adversary(flags: &Flags) -> Result<bool, String> {
    use parsched::PolicyKind;
    use parsched_adversary::{
        run_search, summary_table, CorpusEntry, SearchConfig, KIND_HARD, KIND_REPRODUCER,
    };

    let budget = flags.get_f64("budget", 200.0) as usize;
    let m = flags.get_f64("m", 4.0);
    let jobs = flags.get_f64("jobs", 0.0) as usize;
    let policy_arg = flags.get_str("policy").unwrap_or("all");
    let targets: Vec<(String, PolicyKind)> = if policy_arg == "all" {
        [
            "isrpt", "psrpt", "ssrpt", "greedy", "equi", "laps:0.5", "setf",
        ]
        .iter()
        .map(|t| (t.to_string(), t.parse().expect("standard token parses")))
        .collect()
    } else {
        vec![(policy_arg.to_string(), policy_arg.parse::<PolicyKind>()?)]
    };

    // Provenance only — replay re-measures, so an unset var is harmless.
    let engine_commit =
        std::env::var("PARSCHED_ENGINE_COMMIT").unwrap_or_else(|_| "unrecorded".to_string());
    let emit_dir = flags.get_str("emit-corpus").map(str::to_string);
    if let Some(dir) = &emit_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("--emit-corpus {dir}: {e}"))?;
    }

    let mut results = Vec::new();
    let mut clean = true;
    for (token, kind) in &targets {
        let mut cfg = SearchConfig::new(*kind, flags.seed, budget);
        cfg.m = m;
        cfg.jobs = jobs;
        let start = std::time::Instant::now();
        let out = run_search(&cfg);
        eprintln!(
            "{token}: {} evals in {:.2}s",
            out.evals,
            start.elapsed().as_secs_f64()
        );
        let traj: Vec<String> = out.trajectory.iter().map(|r| format!("{r:.4}")).collect();
        println!("{token}: best-ratio trajectory {}", traj.join(" -> "));
        for f in &out.failures {
            clean = false;
            println!(
                "{token}: ENGINE FAILURE: {} — shrunk to {} job(s) [{}]",
                f.error,
                f.jobs.len(),
                f.provenance
            );
        }
        if let Some(dir) = &emit_dir {
            let corpus_top = flags.get_f64("corpus-top", 2.0) as usize;
            let mut written = 0usize;
            for (rank, e) in out.elites.iter().take(corpus_top).enumerate() {
                let instance = e
                    .genome
                    .materialize(m)
                    .map_err(|err| format!("elite rematerialization: {err}"))?;
                let entry = CorpusEntry {
                    kind: KIND_HARD.to_string(),
                    policy: token.clone(),
                    m,
                    search_seed: flags.seed,
                    budget,
                    ratio: e.ratio,
                    flow: e.flow,
                    lb: e.lb,
                    lb_kind: e.lb_kind.name().to_string(),
                    engine_commit: engine_commit.clone(),
                    genome: e.genome.provenance(),
                    jobs: instance.jobs().to_vec(),
                };
                let name = entry.file_name(rank);
                std::fs::write(format!("{dir}/{name}"), entry.to_json())
                    .map_err(|err| format!("writing {dir}/{name}: {err}"))?;
                written += 1;
            }
            for (rank, f) in out.failures.iter().enumerate() {
                let entry = CorpusEntry {
                    kind: KIND_REPRODUCER.to_string(),
                    policy: token.clone(),
                    m,
                    search_seed: flags.seed,
                    budget,
                    ratio: 0.0,
                    flow: 0.0,
                    lb: 0.0,
                    lb_kind: "none".to_string(),
                    engine_commit: engine_commit.clone(),
                    genome: f.provenance.clone(),
                    jobs: f.jobs.clone(),
                };
                let name = format!("repro-{}", entry.file_name(rank));
                std::fs::write(format!("{dir}/{name}"), entry.to_json())
                    .map_err(|err| format!("writing {dir}/{name}: {err}"))?;
                written += 1;
            }
            println!("{token}: wrote {written} corpus entr(y/ies)");
        }
        results.push((token.clone(), out));
    }
    println!("{}", summary_table(&results).render());
    Ok(clean)
}

/// `parsched fleet` — the multi-tenant serving demo. Generates a seeded
/// mix of scheduling scenarios (policy × machine count × engine mode),
/// submits them under the admission caps, and drives them round-by-round
/// on the shard pool via snapshot suspend/resume. The report (text or
/// `--json`) is **byte-identical for every `--jobs N`** and with
/// `--migrate` on or off — that invariance is pinned by `tests/cli.rs`
/// and CI's fleet job. `Ok(false)` (exit 1) when any tenant was shed or
/// failed; parameter errors are `Err` (exit 2).
fn cmd_fleet(flags: &Flags) -> Result<bool, String> {
    use parsched_analysis::Pool;
    use parsched_fleet::{FleetConfig, FleetSession, TenantStatus};

    let get_usize = |key: &str, default: usize| -> Result<usize, String> {
        match flags.get_str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{key}: {e}")),
        }
    };
    let tenants_n = get_usize("tenants", 12)?;
    let cap = get_usize("cap", 8)?;
    let queue = get_usize("queue", tenants_n)?;
    let slice = get_usize("slice", 16)? as u64;
    let jobs = get_usize("jobs", 0)?;
    let migrate = flags.get_str("migrate").is_some();
    let json = flags.get_str("json").is_some();
    let seed = if flags.get_str("seed").is_some() {
        flags.seed
    } else {
        42
    };

    let cfg = FleetConfig {
        max_in_flight: cap,
        max_pending: queue,
        slice_events: slice,
        migrate,
    };
    let mut session =
        FleetSession::new(cfg, fleet_tenants(tenants_n, seed)).map_err(|e| e.to_string())?;
    let out = session.run(&Pool::new(jobs));

    if json {
        println!("{}", fleet_report_json(&out, cap, queue, slice, migrate));
    } else {
        println!(
            "fleet: {} tenants, cap {cap} in-flight + {queue} queued, \
             slice {slice} events, migrate {}",
            out.reports.len(),
            if migrate { "on" } else { "off" }
        );
        for r in &out.reports {
            let mode = if r.streaming {
                "streaming"
            } else {
                "in-memory"
            };
            match &r.status {
                TenantStatus::Done { metrics, rounds } => println!(
                    "  {}  {:<22} {:<9} jobs {:>3}  done in {rounds} rounds: \
                     events {} flow {:?} makespan {:?}",
                    r.name,
                    r.policy,
                    mode,
                    r.jobs,
                    metrics.events,
                    metrics.total_flow,
                    metrics.makespan
                ),
                TenantStatus::Shed { reason } => {
                    println!(
                        "  {}  {:<22} {:<9} jobs {:>3}  SHED: {reason}",
                        r.name, r.policy, mode, r.jobs
                    )
                }
                TenantStatus::Failed { error } => {
                    println!(
                        "  {}  {:<22} {:<9} jobs {:>3}  FAILED: {error}",
                        r.name, r.policy, mode, r.jobs
                    )
                }
            }
        }
        println!(
            "fleet done: {} done, {} shed, {} failed in {} rounds",
            out.done, out.shed, out.failed, out.rounds
        );
    }
    Ok(out.shed == 0 && out.failed == 0)
}

/// Deterministic tenant mix for `parsched fleet`: policies cycle through
/// the whole registry, machine counts alternate 4/8, every third tenant
/// runs the streaming path, and each instance is a small seeded
/// mixed-α workload.
fn fleet_tenants(n: usize, seed: u64) -> Vec<parsched_fleet::TenantSpec> {
    use parsched::PolicyKind;
    use parsched_fleet::TenantSpec;
    use parsched_sim::{Instance, JobId, JobSpec};
    use parsched_speedup::Curve;

    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let policies = PolicyKind::all_registered();
    let alphas = [0.25, 0.5, 0.75, 1.0];
    (0..n)
        .map(|i| {
            let n_jobs = 3 + (next() % 8) as usize;
            let mut release = 0.0;
            let jobs = (0..n_jobs)
                .map(|j| {
                    let u = next();
                    release += (u % 5) as f64 * 0.5;
                    let size = 1.0 + (u % 7) as f64;
                    let alpha = alphas[(u as usize >> 8) % alphas.len()];
                    JobSpec::new(JobId(j as u64), release, size, Curve::power(alpha))
                })
                .collect();
            let instance = Instance::new(jobs).expect("seeded fleet instance is valid");
            TenantSpec::new(
                format!("tenant-{i:04}"),
                instance,
                policies[i % policies.len()],
                if i % 2 == 0 { 4.0 } else { 8.0 },
            )
            .with_streaming(i % 3 == 0)
        })
        .collect()
}

/// Single-line machine-readable fleet report. Field order is fixed and
/// floats render via Rust's shortest-round-trip formatting, so the
/// document is byte-stable run-to-run.
fn fleet_report_json(
    out: &parsched_fleet::FleetOutcome,
    cap: usize,
    queue: usize,
    slice: u64,
    migrate: bool,
) -> String {
    use parsched_fleet::TenantStatus;
    use parsched_sim::jsonlite::Json;
    let obj = |fields: Vec<(&str, Json)>| {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let num = |x: f64| Json::Num(format!("{x:?}"));
    let reports = out
        .reports
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("name", Json::Str(r.name.clone())),
                ("policy", Json::Str(r.policy.clone())),
                ("streaming", Json::Bool(r.streaming)),
                ("jobs", Json::Num(r.jobs.to_string())),
            ];
            match &r.status {
                TenantStatus::Done { metrics, rounds } => {
                    fields.push(("status", Json::Str("done".to_string())));
                    fields.push(("rounds", Json::Num(rounds.to_string())));
                    fields.push(("events", Json::Num(metrics.events.to_string())));
                    fields.push(("total_flow", num(metrics.total_flow)));
                    fields.push(("makespan", num(metrics.makespan)));
                }
                TenantStatus::Shed { reason } => {
                    fields.push(("status", Json::Str("shed".to_string())));
                    fields.push(("reason", Json::Str(reason.to_string())));
                }
                TenantStatus::Failed { error } => {
                    fields.push(("status", Json::Str("failed".to_string())));
                    fields.push(("error", Json::Str(error.clone())));
                }
            }
            obj(fields)
        })
        .collect();
    obj(vec![
        ("format", Json::Str("parsched-fleet/v1".to_string())),
        ("cap", Json::Num(cap.to_string())),
        ("queue", Json::Num(queue.to_string())),
        ("slice", Json::Num(slice.to_string())),
        ("migrate", Json::Bool(migrate)),
        ("rounds", Json::Num(out.rounds.to_string())),
        ("done", Json::Num(out.done.to_string())),
        ("shed", Json::Num(out.shed.to_string())),
        ("failed", Json::Num(out.failed.to_string())),
        ("reports", Json::Arr(reports)),
    ])
    .render()
}

/// waiver problems (exit 1), `Err` on usage/IO errors (exit 2). Paths are
/// workspace-relative prefixes that restrict which files are analyzed.
fn cmd_lint(args: &[String]) -> Result<bool, String> {
    let mut root = std::path::PathBuf::from(".");
    let mut format = "human".to_string();
    let mut explain: Option<(String, String)> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let (key, inline_val) = match arg.split_once('=') {
            Some((k, v)) => (k, Some(v.to_string())),
            None => (arg, None),
        };
        match key {
            "--root" | "--format" => {
                let val = match inline_val {
                    Some(v) => v,
                    None => {
                        i += 1;
                        args.get(i)
                            .cloned()
                            .ok_or_else(|| format!("{key} needs a value"))?
                    }
                };
                if key == "--root" {
                    root = std::path::PathBuf::from(val);
                } else {
                    match val.as_str() {
                        "json" | "human" | "sarif" => format = val,
                        other => return Err(format!("unknown lint format '{other}'")),
                    }
                }
            }
            "--explain" => {
                // `--explain L007 Engine::advance_to` — rule then symbol.
                let rule = match inline_val {
                    Some(v) => v,
                    None => {
                        i += 1;
                        args.get(i)
                            .cloned()
                            .ok_or_else(|| "--explain needs a rule id".to_string())?
                    }
                };
                i += 1;
                let symbol = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| "--explain needs a rule id and a symbol".to_string())?;
                explain = Some((rule, symbol));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown lint option '{other}'"));
            }
            path => {
                // Normalize `./crates/simcore/` → `crates/simcore` so
                // prefixes match the workspace-relative file paths.
                let p = path.trim_start_matches("./").trim_end_matches('/');
                filters.push(p.to_string());
            }
        }
        i += 1;
    }
    let ws = match parsched_lint::Workspace::load(&root, &filters) {
        Ok(ws) => ws,
        Err(e) => {
            // The exit-2 path still emits a structured document for the
            // machine formats, so a failed run can never be mistaken for
            // a clean empty one.
            let msg = format!("lint: cannot read {}: {e}", root.display());
            let outcome = parsched_lint::LintOutcome::from_errors(vec![msg.clone()]);
            match format.as_str() {
                "json" => print!("{}", parsched_lint::report::render_json(&outcome)),
                "sarif" => print!("{}", parsched_lint::report::render_sarif(&outcome)),
                _ => {}
            }
            return Err(msg);
        }
    };
    if let Some((rule, symbol)) = explain {
        let text = parsched_lint::explain(&ws, &rule, &symbol)?;
        print!("{text}");
        return Ok(true);
    }
    let outcome = parsched_lint::run(&ws);
    match format.as_str() {
        "json" => print!("{}", parsched_lint::report::render_json(&outcome)),
        "sarif" => print!("{}", parsched_lint::report::render_sarif(&outcome)),
        _ => print!("{}", parsched_lint::report::render_human(&outcome)),
    }
    Ok(outcome.is_clean())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match cmd {
        "list" => {
            for id in all_ids() {
                let res_title = match *id {
                    "f1" => "Θ(log P) scaling of Intermediate-SRPT (Theorems 1 & 2)",
                    "f2" => "α-dependence and the jump at α = 1",
                    "f3" => "Greedy hybrid is Ω(P) on the trap family (Lemma 10)",
                    "f4" => "No online algorithm escapes the phase adversary (Theorem 2)",
                    "f5" => "Overload ↔ underload regime switching",
                    "f6" => "Machine-count independence of the ratio (Theorem 1)",
                    "t1" => "Cross-policy comparison on Poisson workloads",
                    "t2" => "Lemmas 1, 4, 5 verified pointwise on traces",
                    "t3" => "Potential-function analysis verified numerically (§2)",
                    "t4" => "EQUI is 2-competitive for batch release (Edmonds sanity)",
                    "t5" => "Fairness: the stretch trade-off (flow vs starvation)",
                    _ => "",
                };
                println!("{id}  {res_title}");
            }
            ExitCode::SUCCESS
        }
        "exp" => {
            let Some((id, fl)) = rest.split_first() else {
                eprintln!("exp needs an experiment id\n\n{}", usage());
                return ExitCode::from(2);
            };
            match parse_flags(fl).and_then(|flags| cmd_exp(id, &flags)) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::from(1),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "sweep" => match cmd_sweep(rest) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "all" => match parse_flags(rest) {
            Ok(flags) => {
                if cmd_all(&flags) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "gen" => match parse_flags(rest).and_then(|flags| cmd_gen(&flags)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "run" => match parse_flags(rest).and_then(|flags| cmd_run(&flags)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "audit" => {
            let Some((path, fl)) = rest.split_first() else {
                eprintln!("audit needs a trace file\n\n{}", usage());
                return ExitCode::from(2);
            };
            match parse_flags(fl).and_then(|flags| cmd_audit(path, &flags)) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::from(1),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "bench-snapshot" => match parse_flags(rest).and_then(|flags| cmd_bench_snapshot(&flags)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "compare" => match parse_flags(rest).and_then(|flags| cmd_compare(&flags)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "fleet" => match parse_flags(rest).and_then(|flags| cmd_fleet(&flags)) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "adversary" => match parse_flags(rest).and_then(|flags| cmd_adversary(&flags)) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "lint" => match cmd_lint(rest) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command '{other}'\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}
