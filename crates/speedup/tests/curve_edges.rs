//! Edge-case property suite for [`Curve`] evaluation and inversion.
//!
//! The in-crate unit tests cover the interior of the parameter space; this
//! suite pins down the boundaries the engine actually hits in long runs:
//! α → 0 (sequential limit), α → 1 (fully-parallel limit), allocations at
//! exactly `x = 1` (the power law's Γ kink, where `Γ(x) = x` hands over to
//! `Γ(x) = x^α`), and denormal/huge allocations. Assertions are
//! monotonicity, `Γ(1) = 1` continuity across the kink, and the
//! `inverse_rate ∘ rate` round-trip within an ulp-scaled tolerance.

use parsched_speedup::Curve;
use proptest::prelude::*;

/// Distance between two floats in units of the larger one's ulp — the
/// scale-free way to say "these agree to the last few bits".
fn ulp_distance(a: f64, b: f64) -> f64 {
    let ulp = a.abs().max(b.abs()).max(f64::MIN_POSITIVE) * f64::EPSILON;
    (a - b).abs() / ulp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn gamma_of_one_is_exactly_one(alpha in 0.0f64..=1.0) {
        // Both branches of the kink evaluate to exactly 1.0 at x = 1
        // (1^α = 1 in IEEE754 for every finite α), so policies that divide
        // by Γ(share) at share 1 see no kink artifact.
        prop_assert_eq!(Curve::Power { alpha }.rate(1.0), 1.0);
    }

    #[test]
    fn gamma_is_continuous_across_the_kink(alpha in 0.0f64..=1.0) {
        // One-ulp neighbours of x = 1 must evaluate within a few ulps of
        // 1.0 — a discontinuity here would make completion times jump at
        // the hand-over between the linear and power branches.
        let c = Curve::Power { alpha };
        let below = f64::from_bits(1.0f64.to_bits() - 1);
        let above = f64::from_bits(1.0f64.to_bits() + 1);
        prop_assert!(ulp_distance(c.rate(below), 1.0) <= 4.0);
        prop_assert!(ulp_distance(c.rate(above), 1.0) <= 4.0);
        // And monotone through it.
        prop_assert!(c.rate(below) <= c.rate(1.0));
        prop_assert!(c.rate(1.0) <= c.rate(above));
    }

    #[test]
    fn rate_is_monotone_at_extreme_alphas(x in 0.0f64..1e6, y in 0.0f64..1e6) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        for c in [
            Curve::Power { alpha: 0.0 },
            Curve::Power { alpha: f64::MIN_POSITIVE }, // denormal-adjacent α
            Curve::Power { alpha: 1.0 - f64::EPSILON },
            Curve::Power { alpha: 1.0 },
            Curve::Sequential,
            Curve::FullyParallel,
        ] {
            prop_assert!(
                c.rate(lo) <= c.rate(hi) + 1e-12,
                "{c:?} not monotone on [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn denormal_allocations_stay_on_the_identity(x in 0u64..1000) {
        // Below x = 1 the model curves are the identity, all the way down
        // into the denormal range — no underflow to a zero rate, which
        // would turn a live job into a stalled one.
        let tiny = f64::from_bits(x + 1); // smallest denormals
        for alpha in [0.0, 0.25, 1.0] {
            let c = Curve::Power { alpha };
            prop_assert_eq!(c.rate(tiny), tiny);
            prop_assert_eq!(c.inverse_rate(tiny), Some(tiny));
        }
    }

    #[test]
    fn huge_allocations_never_overflow_below_alpha_one(
        alpha in 0.0f64..=1.0, exp in 100i32..300
    ) {
        // Γ(x) ≤ x keeps the rate finite for any finite allocation.
        let x = 10f64.powi(exp);
        let r = Curve::Power { alpha }.rate(x);
        prop_assert!(r.is_finite());
        prop_assert!(r <= x * (1.0 + 1e-12));
        prop_assert!(r >= 1.0); // monotone above the kink
    }

    #[test]
    fn inverse_rate_round_trips_within_ulp_scale(
        alpha in 0.05f64..=1.0, x in 1.0f64..1e12
    ) {
        // invert ∘ eval: x  →  x^α  →  (x^α)^(1/α). Each powf rounds to a
        // few ulps, and the 1/α exponent amplifies a relative error on r
        // by 1/α — so the tolerance is an ulp-count scaled by 1/α (plus a
        // constant for the two roundings), not a fixed epsilon.
        let c = Curve::Power { alpha };
        let r = c.rate(x);
        let back = c.inverse_rate(r).expect("power α > 0 never saturates");
        prop_assert!(
            ulp_distance(back, x) <= 4.0 + 8.0 / alpha,
            "α={alpha}: x={x} → r={r} → x'={back} ({} ulps)",
            ulp_distance(back, x)
        );
        // eval ∘ invert in the other direction, same bound.
        let r2 = c.rate(back);
        prop_assert!(ulp_distance(r2, r) <= 4.0 + 8.0 / alpha);
    }

    #[test]
    fn alpha_zero_saturates_and_alpha_one_is_linear(r in 1.0f64..1e9) {
        // α → 0 degenerates to Sequential: rate capped at 1, inversion
        // above 1 impossible.
        let seq = Curve::Power { alpha: 0.0 };
        prop_assert_eq!(seq.rate(r.max(1.0)), 1.0);
        if r > 1.0 {
            prop_assert_eq!(seq.inverse_rate(r), None);
            prop_assert_eq!(Curve::Sequential.inverse_rate(r), None);
        }
        // α → 1 degenerates to FullyParallel: exact identity both ways.
        let par = Curve::Power { alpha: 1.0 };
        prop_assert_eq!(par.rate(r), r);
        prop_assert_eq!(par.inverse_rate(r), Some(r));
    }

    #[test]
    fn near_degenerate_alphas_agree_with_their_limits(x in 1.0f64..1e6) {
        // α within an ulp of the endpoints must behave like the endpoint
        // to high relative accuracy (x^ε = e^{ε ln x} ≈ 1 + ε ln x).
        let nearly_seq = Curve::Power { alpha: 1e-14 };
        prop_assert!((nearly_seq.rate(x) - 1.0).abs() <= 1e-12 * x.ln().max(1.0));
        let nearly_par = Curve::Power { alpha: 1.0 - 1e-14 };
        prop_assert!(ulp_distance(nearly_par.rate(x), x) <= x.ln().max(1.0) * 100.0);
    }
}

#[test]
fn kink_neighbourhood_is_exact_at_the_endpoints() {
    // Deterministic spot checks at the exact boundary values the proptest
    // ranges can't pin: α ∈ {0, 1} at x ∈ {1⁻, 1, 1⁺}.
    let below = f64::from_bits(1.0f64.to_bits() - 1);
    let above = f64::from_bits(1.0f64.to_bits() + 1);
    for alpha in [0.0, 1.0] {
        let c = Curve::Power { alpha };
        assert_eq!(c.rate(1.0), 1.0);
        assert_eq!(c.rate(below), below); // identity branch
    }
    assert_eq!(Curve::Power { alpha: 1.0 }.rate(above), above);
    assert_eq!(Curve::Power { alpha: 0.0 }.rate(above), 1.0);
}

#[test]
fn inverse_rate_at_the_saturation_boundary() {
    // Amdahl saturates at 1/s; exactly at the boundary inversion must
    // refuse rather than return an infinite allocation.
    let c = Curve::try_amdahl(0.5).unwrap();
    assert_eq!(c.inverse_rate(2.0), None);
    let just_below = 2.0 - 1e-9;
    let x = c.inverse_rate(just_below).unwrap();
    assert!(x.is_finite() && x > 0.0);
    assert!((c.rate(x) - just_below).abs() <= 1e-6);
}
