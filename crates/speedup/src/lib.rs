//! Speed-up curve algebra for malleable-task scheduling.
//!
//! This crate implements the job-parallelizability model of
//! *"Competitively Scheduling Tasks with Intermediate Parallelizability"*
//! (Im, Moseley, Pruhs, Torng — SPAA 2014). A **speed-up curve**
//! `Γ: [0, ∞) → [0, ∞)` gives the rate at which work on a job is processed
//! when the job is allocated `x` (possibly fractional) processors.
//!
//! The paper's central family is the *power-law* curve with exponent
//! `α ∈ [0, 1]`:
//!
//! ```text
//! Γ(x) = x       for x ≤ 1
//! Γ(x) = x^α     for x ≥ 1
//! ```
//!
//! `α = 1` is a **fully parallelizable** job, `α = 0` a **sequential** job,
//! and `α ∈ (0, 1)` a job of **intermediate parallelizability**. All curves
//! in this crate are non-decreasing, concave, and satisfy `Γ(0) = 0`; these
//! invariants are what the paper's proofs (e.g. its Proposition 1) rely on,
//! and they are enforced by [`Curve::validate`] and checked by property
//! tests.
//!
//! # Quick example
//!
//! ```
//! use parsched_speedup::Curve;
//!
//! let half = Curve::power(0.5);
//! assert_eq!(half.rate(0.25), 0.25);  // sub-processor allocations are linear
//! assert_eq!(half.rate(1.0), 1.0);
//! assert_eq!(half.rate(4.0), 2.0);    // 4 processors → rate 4^0.5 = 2
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod amdahl;
mod curve;
mod error;
mod float;
mod kernel;
mod piecewise;
mod power;

pub use amdahl::amdahl_rate;
pub use curve::Curve;
pub use error::CurveError;
pub use float::{approx_eq, approx_le, exact_eq, EPS};
pub use kernel::{gamma_by_class, PowKernel};
pub use piecewise::PiecewiseLinear;
pub use power::power_rate;
