//! Amdahl's-law speed-up curve (an extension beyond the paper's family).

/// Rate of an Amdahl curve with serial fraction `s ∈ [0, 1]`.
///
/// For `x ≥ 1` processors the classic Amdahl's-law speed-up applies:
/// `Γ(x) = 1 / (s + (1 - s)/x)`, which saturates at `1/s` as `x → ∞`.
/// For `x ≤ 1` we keep the model's convention `Γ(x) = x` (a fractional
/// processor processes work proportionally), which joins continuously at
/// `x = 1` where both branches give `1`.
///
/// This curve is not part of the SPAA'14 family but is the workhorse of
/// practical parallel-performance modelling; it is concave and
/// non-decreasing, so every result in this repository that only relies on
/// those properties (e.g. the engine, EQUI's batch guarantee) applies to it.
#[inline]
pub fn amdahl_rate(serial_fraction: f64, x: f64) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "serial fraction out of range: {serial_fraction}"
    );
    debug_assert!(x >= 0.0, "negative processor allocation: {x}");
    if x <= 1.0 {
        x
    } else {
        1.0 / (serial_fraction + (1.0 - serial_fraction) / x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn matches_classic_amdahl_points() {
        // s = 0.5: speed-up with many processors approaches 2.
        assert!(approx_eq(amdahl_rate(0.5, 1.0), 1.0));
        assert!(approx_eq(amdahl_rate(0.5, 2.0), 1.0 / (0.5 + 0.25)));
        assert!(amdahl_rate(0.5, 1e9) < 2.0);
        assert!(amdahl_rate(0.5, 1e9) > 1.999);
    }

    #[test]
    fn zero_serial_fraction_is_fully_parallel() {
        for x in [1.0, 2.0, 8.0, 100.0] {
            assert!(approx_eq(amdahl_rate(0.0, x), x));
        }
    }

    #[test]
    fn unit_serial_fraction_is_sequential() {
        for x in [1.0, 2.0, 8.0, 100.0] {
            assert!(approx_eq(amdahl_rate(1.0, x), 1.0));
        }
    }

    #[test]
    fn linear_below_one_processor() {
        assert_eq!(amdahl_rate(0.3, 0.0), 0.0);
        assert_eq!(amdahl_rate(0.3, 0.5), 0.5);
    }

    #[test]
    fn concave_sampled() {
        // Midpoint test on a grid: Γ((a+b)/2) ≥ (Γ(a)+Γ(b))/2.
        let s = 0.2;
        let grid: Vec<f64> = (0..50).map(|i| f64::from(i) * 0.5).collect();
        for &a in &grid {
            for &b in &grid {
                let mid = amdahl_rate(s, (a + b) / 2.0);
                let chord = (amdahl_rate(s, a) + amdahl_rate(s, b)) / 2.0;
                assert!(mid + 1e-9 >= chord, "not concave at a={a}, b={b}");
            }
        }
    }
}
