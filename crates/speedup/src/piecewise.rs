//! Concave piecewise-linear speed-up curves.
//!
//! These model arbitrary measured speed-up profiles (the "arbitrary speed-up
//! curves" of Edmonds [TCS'00] and Edmonds–Pruhs [TALG'12], cited by the
//! paper as the general setting). Any non-decreasing concave curve through
//! the origin can be approximated to arbitrary precision by this type.

use serde::{Deserialize, Serialize};

use crate::error::CurveError;

/// A concave, non-decreasing, piecewise-linear curve through the origin.
///
/// Defined by breakpoints `(x_0, y_0) = (0, 0), (x_1, y_1), …, (x_k, y_k)`
/// with strictly increasing `x_i`, non-decreasing `y_i`, and non-increasing
/// segment slopes. Beyond the last breakpoint the curve continues with the
/// final segment's slope (commonly zero: a saturating curve).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    points: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds a curve from breakpoints, validating all invariants.
    ///
    /// The first breakpoint must be `(0, 0)`.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, CurveError> {
        if points.len() < 2 {
            return Err(CurveError::TooFewBreakpoints);
        }
        if points.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(CurveError::NotFinite);
        }
        if points[0] != (0.0, 0.0) {
            return Err(CurveError::MissingOrigin);
        }
        let mut prev_slope = f64::INFINITY;
        for i in 1..points.len() {
            let (x0, y0) = points[i - 1];
            let (x1, y1) = points[i];
            if x1 <= x0 {
                return Err(CurveError::NonIncreasingBreakpoints { index: i });
            }
            if y1 < y0 {
                return Err(CurveError::Decreasing { index: i });
            }
            let slope = (y1 - y0) / (x1 - x0);
            if slope > prev_slope + 1e-12 {
                return Err(CurveError::NotConcave { index: i });
            }
            prev_slope = slope;
        }
        Ok(Self { points })
    }

    /// A saturating two-segment curve: linear speed-up until `knee`
    /// processors, flat afterwards. `knee = 1` gives the sequential curve.
    pub fn saturating(knee: f64) -> Result<Self, CurveError> {
        Self::new(vec![(0.0, 0.0), (knee, knee), (knee + 1.0, knee)])
    }

    /// Samples a power-law curve at `segments` integer-ish points, producing
    /// a piecewise-linear under-approximation useful for testing generic
    /// curve handling against the closed form.
    pub fn sampled_power(alpha: f64, max_x: f64, segments: usize) -> Result<Self, CurveError> {
        let segments = segments.max(2);
        let mut points = Vec::with_capacity(segments + 1);
        points.push((0.0, 0.0));
        for i in 1..=segments {
            let x = max_x * i as f64 / segments as f64;
            points.push((x, crate::power::power_rate(alpha, x)));
        }
        Self::new(points)
    }

    /// The curve's breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Evaluates the curve at `x ≥ 0`.
    pub fn rate(&self, x: f64) -> f64 {
        debug_assert!(x >= 0.0, "negative processor allocation: {x}");
        let pts = &self.points;
        // Find the segment containing x by binary search on breakpoint xs.
        let idx = pts.partition_point(|&(px, _)| px < x);
        if idx == 0 {
            return pts[0].1; // x == 0
        }
        let (x1, y1) = if idx < pts.len() {
            pts[idx]
        } else {
            // Extrapolate with the last segment's slope.
            let (xa, ya) = pts[pts.len() - 2];
            let (xb, yb) = pts[pts.len() - 1];
            let slope = (yb - ya) / (xb - xa);
            return yb + slope * (x - xb);
        };
        let (x0, y0) = pts[idx - 1];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 0.0)]),
            Err(CurveError::TooFewBreakpoints)
        );
        assert_eq!(
            PiecewiseLinear::new(vec![(1.0, 1.0), (2.0, 2.0)]),
            Err(CurveError::MissingOrigin)
        );
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 1.0), (1.0, 2.0)]),
            Err(CurveError::NonIncreasingBreakpoints { index: 2 })
        );
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]),
            Err(CurveError::Decreasing { index: 2 })
        );
        // Slope increases 0.5 → 2: convex kink.
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 0.0), (2.0, 1.0), (3.0, 3.0)]),
            Err(CurveError::NotConcave { index: 2 })
        );
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 0.0), (f64::NAN, 1.0)]),
            Err(CurveError::NotFinite)
        );
    }

    #[test]
    fn saturating_curve_evaluates() {
        let c = PiecewiseLinear::saturating(4.0).unwrap();
        assert!(approx_eq(c.rate(0.0), 0.0));
        assert!(approx_eq(c.rate(2.0), 2.0));
        assert!(approx_eq(c.rate(4.0), 4.0));
        assert!(approx_eq(c.rate(100.0), 4.0)); // flat extrapolation
    }

    #[test]
    fn interpolates_between_breakpoints() {
        let c = PiecewiseLinear::new(vec![(0.0, 0.0), (2.0, 2.0), (6.0, 4.0)]).unwrap();
        assert!(approx_eq(c.rate(1.0), 1.0));
        assert!(approx_eq(c.rate(4.0), 3.0));
        // Beyond last breakpoint: slope 0.5 continues.
        assert!(approx_eq(c.rate(8.0), 5.0));
    }

    proptest::proptest! {
        /// Random valid concave curves: built from positive widths and
        /// non-increasing positive-then-possibly-zero slopes.
        #[test]
        fn random_concave_curves_validate_and_stay_concave(
            widths in proptest::collection::vec(0.1f64..4.0, 1..8),
            slope_drops in proptest::collection::vec(0.0f64..1.0, 1..8),
            first_slope in 0.1f64..2.0,
            a in 0.0f64..20.0,
            b in 0.0f64..20.0,
        ) {
            let n = widths.len().min(slope_drops.len());
            let mut points = vec![(0.0, 0.0)];
            let mut slope = first_slope;
            let (mut x, mut y) = (0.0, 0.0);
            for i in 0..n {
                x += widths[i];
                y += slope * widths[i];
                points.push((x, y));
                slope *= 1.0 - slope_drops[i]; // non-increasing
            }
            let curve = PiecewiseLinear::new(points).expect("constructed concave curve");
            // Monotonicity and midpoint concavity on random sample pairs.
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            proptest::prop_assert!(curve.rate(lo) <= curve.rate(hi) + 1e-9);
            let mid = curve.rate((lo + hi) / 2.0);
            let chord = (curve.rate(lo) + curve.rate(hi)) / 2.0;
            proptest::prop_assert!(mid + 1e-9 >= chord);
        }

        /// inverse_rate ∘ rate is the identity wherever the curve is
        /// strictly increasing.
        #[test]
        fn inverse_round_trips_on_increasing_curves(
            knee in 0.5f64..8.0,
            x in 0.0f64..8.0,
        ) {
            use crate::curve::Curve;
            let c = Curve::Piecewise(PiecewiseLinear::new(
                vec![(0.0, 0.0), (knee, knee), (knee + 4.0, knee + 1.0)],
            ).expect("valid curve"));
            let x = x.min(knee + 4.0);
            let r = c.rate(x);
            if let Some(x2) = c.inverse_rate(r) {
                proptest::prop_assert!((c.rate(x2) - r).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sampled_power_matches_closed_form_at_breakpoints() {
        let c = PiecewiseLinear::sampled_power(0.5, 16.0, 32).unwrap();
        for &(x, y) in c.points() {
            assert!(approx_eq(y, crate::power::power_rate(0.5, x)));
        }
        // Chord lies below the concave closed form between breakpoints.
        assert!(c.rate(2.3) <= crate::power::power_rate(0.5, 2.3) + 1e-12);
    }
}
