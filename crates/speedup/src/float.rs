//! Floating-point comparison helpers shared across the workspace.
//!
//! The simulator advances continuous time with `f64` arithmetic; event times
//! and remaining-work values accumulate rounding error, so every comparison
//! that decides control flow (did a job complete? are two event times equal?)
//! goes through the tolerant helpers here.

/// Absolute tolerance used throughout the simulator.
///
/// Chosen so that instances with sizes up to ~`1e9` and millions of events
/// still resolve completions unambiguously, while remaining far above the
/// noise floor of accumulated `f64` error for the workloads in this
/// repository (sizes in `[1, P]` with `P ≤ 2^20`).
pub const EPS: f64 = 1e-9;

/// `a == b` up to [`EPS`], scaled by magnitude for large values.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= EPS * scale
}

/// `a <= b` up to [`EPS`], scaled by magnitude for large values.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    a - b <= EPS * scale
}

/// Bitwise-exact `a == b`, by name.
///
/// The workspace's static analysis (rule **L003**, see `docs/LINTS.md`)
/// rejects bare `==`/`!=` against float values: almost every comparison in
/// a simulator should tolerate accumulated rounding ([`approx_eq`] /
/// [`approx_le`]). The rare *intended* exact comparisons — sentinel values
/// that were **constructed and never computed**, like "was `--speed` left
/// at its default `1.0`?" or "is this the `α = 0` sequential curve
/// variant?" — go through this helper instead, so the intent is named at
/// the call site and the exactness requirement is documented here once:
/// both operands must be values that reach the comparison unchanged from a
/// literal, parse, or direct assignment. For anything that has been through
/// arithmetic, use the tolerant helpers.
#[inline]
#[allow(clippy::float_cmp)]
pub fn exact_eq(a: f64, b: f64) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_accepts_tiny_differences() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(approx_eq(0.0, 1e-10));
        assert!(approx_eq(1e9, 1e9 + 0.5e0)); // scaled tolerance
    }

    #[test]
    fn approx_eq_rejects_real_differences() {
        assert!(!approx_eq(1.0, 1.001));
        assert!(!approx_eq(0.0, 1e-6));
    }

    #[test]
    fn approx_le_is_tolerant_at_the_boundary() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(approx_le(0.5, 1.0));
        assert!(!approx_le(1.1, 1.0));
    }

    #[test]
    fn approx_le_scales_with_magnitude() {
        assert!(approx_le(1e12 + 1.0, 1e12));
        assert!(!approx_le(1e12 + 1e5, 1e12));
    }
}
