//! [`PowKernel`]: a per-α compiled evaluator for the power-law curve.
//!
//! The engine evaluates `Γ(x) = x^α` on every event interval; routing those
//! evaluations through `f64::powf` pays the full generic `pow` cost (~50–100
//! cycles of argument reduction and polynomial evaluation per call) even
//! though a run touches only a handful of distinct exponents. A `PowKernel`
//! is classified **once per distinct α** and then dispatches each evaluation
//! to the cheapest correct implementation:
//!
//! * **exact endpoints** — `α = 0` (sequential) and `α = 1` (fully
//!   parallel) are branch-only;
//! * **sqrt chains** — `α ∈ {1/2, 1/4, 3/4}` reduce to 1–2 hardware square
//!   roots (`√x`, `√√x`, `√(x·√x)`), each correctly rounded by IEEE-754, so
//!   the chain stays within ~1.5 ulp of the exact power;
//! * **table + exp** — general `α ∈ (0, 1)` computes `exp(α·ln x)` with
//!   `ln x` carried in double-double precision (a 65-entry `ln(1 + k/64)`
//!   table plus a short `ln(1+q)` polynomial), which keeps the naive
//!   `exp(α·ln x)` scheme's `α·|ln x|`-ulp error amplification out of the
//!   result: total error stays within ~1.5 ulp of exact, i.e. ≤ 2 ulp of
//!   `powf` (property-tested in this module).
//!
//! The kernel also caches `1/α` so [`PowKernel::invert`] (the curve's
//! inverse rate, `r^{1/α}`) never divides in a loop.
//!
//! See `docs/PERF.md` §6 for the measured cost model.

use crate::curve::Curve;
use crate::float::exact_eq;

/// Which evaluation strategy a given α compiles to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// `α = 0`: `x^0 = 1` (sequential above the knee).
    Zero,
    /// `α = 1`: identity (fully parallel).
    One,
    /// `α = 1/2`: one hardware sqrt.
    Half,
    /// `α = 1/4`: two hardware sqrts.
    Quarter,
    /// `α = 3/4`: `√(x·√x)`.
    ThreeQuarters,
    /// General `α`: double-double `ln` table + `exp`.
    General,
    /// Benchmark control: route every call through `f64::powf`, skipping
    /// the classified fast paths. Only built by
    /// [`PowKernel::powf_reference`]; exists so `bench-snapshot` can A/B
    /// the kernel against the per-call `powf` it replaced on the same
    /// binary (`kernel_speedup_n1e5` in BENCH_engine.json).
    Reference,
}

/// A compiled evaluator for `x^α`, constructed once per distinct exponent.
///
/// `Copy` and 24 bytes, so callers cache it freely (the engine keeps one
/// per job record; `SrptSet` keeps one for its reference curve).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowKernel {
    alpha: f64,
    /// Cached `1/α` (`+∞` for α = 0); used by [`PowKernel::invert`].
    inv_alpha: f64,
    kind: Kind,
}

// ---------------------------------------------------------------------------
// Double-double helpers (no FMA requirement: Dekker splitting).
// ---------------------------------------------------------------------------

/// Error-free sum: returns `(s, e)` with `s = fl(a + b)` and `a + b = s + e`
/// exactly (Knuth's TwoSum, branch-free).
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let err = (a - (s - bb)) + (b - bb);
    (s, err)
}

/// Dekker split of `a` into a 26-bit head and tail (`a = hi + lo` exactly).
#[inline]
fn split(a: f64) -> (f64, f64) {
    let c = 134_217_729.0 * a; // 2^27 + 1
    let hi = c - (c - a);
    (hi, a - hi)
}

/// Error-free product: `(p, e)` with `p = fl(a·b)` and `a·b = p + e`
/// exactly (Dekker's TwoProduct; inputs here are far from overflow).
#[inline]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let err = ((ah * bh - p) + ah * bl + al * bh) + al * bl;
    (p, err)
}

/// `ln 2` split so that `e · LN2_HI` is exact for every biased exponent
/// (low 16 bits of the significand zeroed; `|e| ≤ 1074 < 2^16`).
const LN2_HI: f64 = 0.693_147_180_558_298_7;
const LN2_LO: f64 = 1.646_594_958_289_708_2e-12;

/// `ln(1 + k/64)` as double-double `(hi, lo)`, `k = 0..=64`, generated from
/// 60-digit decimal arithmetic; `hi` is the nearest f64, `lo` the residual.
#[allow(clippy::excessive_precision)]
const LN_TBL: [(f64, f64); 65] = [
    (0.0, 0.0),
    (0.015504186535965254, -3.278321022892429e-19),
    (0.030771658666753687, 1.0431732029005968e-18),
    (0.0458095360312942, 1.902959866474257e-18),
    (0.06062462181643484, 2.6424025938726934e-18),
    (0.07522342123758753, -5.930604196293241e-18),
    (0.08961215868968714, -5.4268129336647135e-18),
    (0.10379679368164356, 5.47772415726659e-18),
    (0.11778303565638346, -1.1971685747593677e-18),
    (0.13157635778871926, 1.1123000879729588e-17),
    (0.1451820098444979, 8.242418783022475e-18),
    (0.15860503017663857, 1.1257003872182592e-17),
    (0.17185025692665923, -6.0224538210113705e-18),
    (0.184922338494012, 3.0236614153574064e-18),
    (0.19782574332991987, 1.2821194372980142e-17),
    (0.21056476910734964, -4.249405314729895e-18),
    (0.22314355131420976, -9.091270597324799e-18),
    (0.2355660713127669, -2.3943371495187355e-18),
    (0.24783616390458127, -1.2432209578702523e-17),
    (0.25995752443692605, 2.069806938978935e-17),
    (0.27193371548364176, 7.83319637697442e-19),
    (0.2837681731306446, -2.032665581126656e-17),
    (0.2954642128938359, -2.16461086040599e-17),
    (0.3070250352949119, -1.2319916200101964e-17),
    (0.3184537311185346, 2.7114779367326236e-17),
    (0.329753286372468, 2.122020616196946e-18),
    (0.3409265869705932, 1.7467136443544747e-17),
    (0.3519764231571782, -1.2953893030191963e-17),
    (0.3629054936893685, -2.1492361455310972e-17),
    (0.37371640979358406, 2.1836211281198184e-17),
    (0.38441169891033206, -1.612149700764673e-17),
    (0.394993808240869, -1.5113724418336168e-17),
    (0.4054651081081644, -2.8811380259626426e-18),
    (0.415827895143711, -2.48753990369597e-17),
    (0.4260843953109001, -2.499176776547466e-17),
    (0.43623676677491807, -1.8379648230620457e-18),
    (0.44628710262841953, -1.8182541194649598e-17),
    (0.4562374334815876, 2.122222784062318e-17),
    (0.46608972992459924, -1.4116523239904406e-17),
    (0.4758459048699639, -6.181952722542219e-18),
    (0.4855078157817008, -1.6618350693852048e-17),
    (0.4950772667978515, -8.307950959627356e-18),
    (0.5045560107523953, -2.4888518873597905e-17),
    (0.5139457511022343, 3.397548559332142e-17),
    (0.5232481437645479, -3.1833882216350925e-17),
    (0.5324647988694718, -9.149239241180804e-19),
    (0.5415972824327444, -3.748764246125639e-17),
    (0.5506471179526623, -2.239429485856908e-17),
    (0.5596157879354227, 2.685492580212308e-17),
    (0.5685047353526688, -5.4267346029482773e-17),
    (0.5773153650348236, -8.903591846974013e-18),
    (0.5860490450035782, -3.058363205263577e-17),
    (0.5947071077466928, 1.3751689964323675e-17),
    (0.6032908514380843, 9.9400563470175e-18),
    (0.6118015411059929, -3.7397759448726e-17),
    (0.6202404097518576, -3.989161064307651e-17),
    (0.6286086594223741, 4.3538742607970387e-17),
    (0.6369074622370692, 5.422955873465247e-17),
    (0.6451379613735847, 9.346960920120906e-19),
    (0.6533012720127457, -4.306892322029408e-17),
    (0.661398482245365, -7.603333785634003e-18),
    (0.6694306539426292, 2.823733943928343e-17),
    (0.6773988235918061, -2.0978183882652005e-18),
    (0.6853040030989194, 4.893484946270261e-17),
    (std::f64::consts::LN_2, 2.3190468138462996e-17),
];

/// Smallest positive normal f64; below it the general path defers to
/// `powf` rather than special-case subnormal frexp.
const MIN_NORMAL: f64 = 2.2250738585072014e-308;
/// Upper guard for the fast general path (keeps `exp` far from overflow
/// edge cases; the model domain is allocations `x ≤ m`, so this is never
/// hit in the engine).
const MAX_FAST: f64 = 1.0e300;

impl PowKernel {
    /// Compiles a kernel for exponent `α`.
    ///
    /// The model domain is `α ∈ [0, 1]` (checked in debug builds, like
    /// [`crate::power_rate`]); classification is exact bit comparison, so
    /// only literal `0.25`/`0.5`/`0.75` take the sqrt chains.
    #[inline]
    pub fn new(alpha: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&alpha), "alpha out of range: {alpha}");
        let kind = if exact_eq(alpha, 0.0) {
            Kind::Zero
        } else if exact_eq(alpha, 1.0) {
            Kind::One
        } else if exact_eq(alpha, 0.5) {
            Kind::Half
        } else if exact_eq(alpha, 0.25) {
            Kind::Quarter
        } else if exact_eq(alpha, 0.75) {
            Kind::ThreeQuarters
        } else {
            Kind::General
        };
        PowKernel {
            alpha,
            inv_alpha: 1.0 / alpha, // +∞ for α = 0, by design
            kind,
        }
    }

    /// A deliberately slow kernel that evaluates every call through
    /// `f64::powf` — the pre-kernel hot-loop cost. Used as the baseline
    /// arm of the `kernel_speedup_n1e5` measurement and by differential
    /// tests; never constructed by [`Curve::kernel`].
    #[inline]
    pub fn powf_reference(alpha: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&alpha), "alpha out of range: {alpha}");
        PowKernel {
            alpha,
            inv_alpha: 1.0 / alpha,
            kind: Kind::Reference,
        }
    }

    /// The kernel for a power-family [`Curve`] (`FullyParallel` ≡ α = 1,
    /// `Sequential` ≡ α = 0), or `None` for shapes outside the power family
    /// (Amdahl, piecewise), which keep their own evaluators.
    #[inline]
    pub fn for_curve(curve: &Curve) -> Option<Self> {
        curve.alpha().map(Self::new)
    }

    /// The exponent this kernel was compiled for.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Cached `1/α` (`+∞` when α = 0).
    #[inline]
    pub fn inv_alpha(&self) -> f64 {
        self.inv_alpha
    }

    /// Raw power `x^α` for `x > 0`.
    ///
    /// Within 2 ulp of `x.powf(α)` across the engine's domain (property
    /// tested for `x ∈ [1, 2^40]`); `α = 1/2` is bit-exact with the
    /// correctly rounded square root. Non-finite, non-positive, and
    /// subnormal inputs defer to `powf` (identical semantics, cold path).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        match self.kind {
            Kind::Zero => {
                if x.is_nan() {
                    x.powf(self.alpha)
                } else {
                    1.0
                }
            }
            Kind::One => x,
            Kind::Half => x.sqrt(),
            Kind::Quarter => x.sqrt().sqrt(),
            Kind::ThreeQuarters => (x * x.sqrt()).sqrt(),
            Kind::General => self.eval_general(x),
            Kind::Reference => x.powf(self.alpha),
        }
    }

    /// The speed-up curve `Γ(x)`: linear below one processor, `x^α` above
    /// (the SPAA'14 power law — same contract as [`crate::power_rate`]).
    #[inline]
    pub fn gamma(&self, x: f64) -> f64 {
        debug_assert!(x >= 0.0, "negative processor allocation: {x}");
        if x <= 1.0 {
            x
        } else {
            self.eval(x)
        }
    }

    /// Inverse of [`PowKernel::eval`]: the allocation whose rate is `r`,
    /// i.e. `r^{1/α}`, using the cached reciprocal exponent. For α = 0 the
    /// power is not invertible and the result is `+∞` for `r > 1` (callers
    /// in [`Curve::inverse_rate`] report saturation before reaching here).
    #[inline]
    pub fn invert(&self, r: f64) -> f64 {
        debug_assert!(r >= 0.0, "negative rate: {r}");
        match self.kind {
            Kind::Zero => {
                // r^∞: 0, 1, or ∞ depending on r vs 1 — powf gets it right.
                r.powf(self.inv_alpha)
            }
            Kind::One => r,
            Kind::Half => r * r,
            Kind::Quarter => {
                let s = r * r;
                s * s
            }
            // r^{4/3} = r · ∛r (cbrt is a hardware/libm primitive).
            Kind::ThreeQuarters => r * r.cbrt(),
            Kind::General | Kind::Reference => r.powf(self.inv_alpha),
        }
    }

    /// Batched [`PowKernel::eval`]: `out[i] = self.eval(xs[i])`.
    ///
    /// Bit-identical to `N` scalar calls — each per-kind loop body *is* the
    /// scalar body — but the kind dispatch is hoisted out of the loop, so
    /// the sqrt-chain and endpoint kinds compile to straight-line slice
    /// loops the autovectorizer can widen (the general DD ln-table path
    /// stays scalar per element; its table gather defeats vectorization,
    /// and bit-identity matters more than width there).
    ///
    /// # Panics
    /// If `xs` and `out` differ in length.
    pub fn eval_batch(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "eval_batch slice length mismatch");
        match self.kind {
            Kind::Zero => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = if x.is_nan() { x.powf(self.alpha) } else { 1.0 };
                }
            }
            Kind::One => out.copy_from_slice(xs),
            Kind::Half => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = x.sqrt();
                }
            }
            Kind::Quarter => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = x.sqrt().sqrt();
                }
            }
            Kind::ThreeQuarters => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = (x * x.sqrt()).sqrt();
                }
            }
            Kind::General => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = self.eval_general(x);
                }
            }
            Kind::Reference => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    *o = x.powf(self.alpha);
                }
            }
        }
    }

    /// Batched [`PowKernel::gamma`]: `out[i] = self.gamma(xs[i])`,
    /// bit-identical to `N` scalar calls (see [`PowKernel::eval_batch`] for
    /// the vectorization contract). The knee test `x ≤ 1` stays inside the
    /// per-element loop — it is a branchless select in the vectorized
    /// kinds — so mixed below/above-knee batches are handled exactly.
    ///
    /// # Panics
    /// If `xs` and `out` differ in length.
    pub fn gamma_batch(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "gamma_batch slice length mismatch");
        match self.kind {
            // x ≤ 1 ⇒ x, else 1 (NaN defers to powf like the scalar path).
            Kind::Zero => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    debug_assert!(x >= 0.0, "negative processor allocation: {x}");
                    *o = if x <= 1.0 {
                        x
                    } else if x.is_nan() {
                        x.powf(self.alpha)
                    } else {
                        1.0
                    };
                }
            }
            Kind::One => out.copy_from_slice(xs),
            Kind::Half => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    debug_assert!(x >= 0.0, "negative processor allocation: {x}");
                    *o = if x <= 1.0 { x } else { x.sqrt() };
                }
            }
            Kind::Quarter => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    debug_assert!(x >= 0.0, "negative processor allocation: {x}");
                    *o = if x <= 1.0 { x } else { x.sqrt().sqrt() };
                }
            }
            Kind::ThreeQuarters => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    debug_assert!(x >= 0.0, "negative processor allocation: {x}");
                    *o = if x <= 1.0 { x } else { (x * x.sqrt()).sqrt() };
                }
            }
            Kind::General => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    debug_assert!(x >= 0.0, "negative processor allocation: {x}");
                    *o = if x <= 1.0 { x } else { self.eval_general(x) };
                }
            }
            Kind::Reference => {
                for (o, &x) in out.iter_mut().zip(xs) {
                    debug_assert!(x >= 0.0, "negative processor allocation: {x}");
                    *o = if x <= 1.0 { x } else { x.powf(self.alpha) };
                }
            }
        }
    }

    /// General-α path: `exp(α · ln x)` with `ln x` in double-double.
    ///
    /// Argument reduction: `x = 2^e · m`, `m ∈ [1, 2)`; nearest table node
    /// `c = 1 + k/64`; `q = (m − c)/c` with `|q| ≤ 2⁻⁷` and `m − c` exact
    /// by Sterbenz. Then
    /// `ln x = e·ln2 + ln c + (q + [ln(1+q) − q])`, the bracket from a
    /// degree-7 polynomial (remainder ≤ 2⁻⁵⁹), all accumulated with
    /// error-free transforms, and finally `x^α = exp(y_hi)·(1 + y_lo)`
    /// where `(y_hi, y_lo) = α ⊗ ln x`. Total error ~1.5 ulp of exact.
    fn eval_general(&self, x: f64) -> f64 {
        if !(MIN_NORMAL..MAX_FAST).contains(&x) {
            return x.powf(self.alpha); // subnormal/zero/inf/nan/huge: cold
        }
        let bits = x.to_bits();
        // exponent field of a finite normal f64 is 11 bits; the subtraction cannot wrap
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
        // Nearest 1 + k/64: (m−1)·64 is exact (Sterbenz + power-of-two
        // scale), +0.5 then truncate = round-to-nearest, k ∈ 0..=64.
        // value is in [0.5, 64.5) by construction, truncation is the intended rounding
        let k = ((m - 1.0) * 64.0 + 0.5) as usize;
        let c = (64 + k) as f64 / 64.0; // exact: small integer / 2^6
        let q = (m - c) / c; // numerator exact; |q| ≤ 2⁻⁷
        let q2 = q * q;
        // ln(1+q) − q, |remainder| ≤ |q|⁸/8 ≤ 2⁻⁵⁹.
        let w = q2
            * (-0.5
                + q * (1.0 / 3.0 + q * (-0.25 + q * (0.2 + q * (-1.0 / 6.0 + q * (1.0 / 7.0))))));
        let ef = e as f64;
        // lint:allow(L007) k comes from the 6-bit significand reduction above; always < the 65-entry table
        let (th, t_err) = two_sum(ef * LN2_HI, LN_TBL[k].0);
        // lint:allow(L007) k comes from the 6-bit significand reduction above; always < the 65-entry table
        let lo0 = t_err + ef * LN2_LO + LN_TBL[k].1;
        let (lh, l_err) = two_sum(th, q);
        let lo = lo0 + l_err + w;
        // y = α · (lh + lo), renormalized.
        let (ph, p_err) = two_prod(self.alpha, lh);
        let (yh, yl) = two_sum(ph, p_err + self.alpha * lo);
        yh.exp() * (1.0 + yl)
    }
}

/// Grouped-by-class Γ driver: evaluates `Γ(share)` **once per distinct
/// kernel** — `out[c] = kernels[c].gamma(share)` — instead of once per job.
///
/// This is the engine's mixed-α `Scan`-interval contract: within one
/// constant-allocation interval every running job receives the same
/// `share`, so a job's drain rate depends only on its kernel class, and a
/// prefix of `k` jobs over `C` distinct exponents needs `C` Γ evaluations,
/// not `k`. Results are bit-identical to per-job scalar [`PowKernel::gamma`]
/// calls because `gamma` is a pure function of `(α, share)`.
///
/// `out` is cleared and refilled (capacity retained), so a caller-owned
/// buffer keeps this allocation-free at steady state.
pub fn gamma_by_class(kernels: &[PowKernel], share: f64, out: &mut Vec<f64>) {
    out.clear();
    out.extend(kernels.iter().map(|k| k.gamma(share)));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Units in the last place between two finite same-sign f64s.
    fn ulp_diff(a: f64, b: f64) -> u64 {
        assert!(
            a.is_finite() && b.is_finite() && a > 0.0 && b > 0.0,
            "{a} vs {b}"
        );
        // positive finite doubles have monotone bit patterns; the difference fits i64
        (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
    }

    #[test]
    fn classification_picks_fast_paths() {
        for (alpha, want_sqrt_free) in [(0.0, true), (1.0, true)] {
            let k = PowKernel::new(alpha);
            assert_eq!(
                k.eval(7.0),
                if want_sqrt_free && alpha == 0.0 {
                    1.0
                } else {
                    7.0
                }
            );
        }
        assert_eq!(PowKernel::new(0.5).eval(9.0), 3.0);
        assert_eq!(PowKernel::new(0.25).eval(16.0), 2.0);
        assert_eq!(PowKernel::new(0.75).eval(16.0), 8.0);
    }

    #[test]
    fn sqrt_chain_alpha_half_is_bit_exact_with_sqrt() {
        let k = PowKernel::new(0.5);
        for i in 1..=4096u32 {
            let x = 1.0 + f64::from(i) * 0.37;
            assert_eq!(k.eval(x).to_bits(), x.sqrt().to_bits());
        }
    }

    #[test]
    fn knee_is_exact_for_every_alpha() {
        for alpha in [0.0, 0.1, 0.25, 1.0 / 3.0, 0.5, 0.6180339887, 0.75, 0.9, 1.0] {
            let k = PowKernel::new(alpha);
            assert_eq!(k.eval(1.0), 1.0, "α = {alpha}");
            assert_eq!(k.gamma(1.0), 1.0, "α = {alpha}");
            // Just above the knee stays within 2 ulp of powf.
            let x = 1.0 + f64::EPSILON;
            assert!(
                ulp_diff(
                    k.eval(x).max(f64::MIN_POSITIVE),
                    x.powf(alpha).max(f64::MIN_POSITIVE)
                ) <= 2
            );
        }
    }

    #[test]
    fn gamma_matches_power_rate_contract() {
        for alpha in [0.0, 0.2, 0.25, 0.5, 0.75, 0.77, 1.0] {
            let k = PowKernel::new(alpha);
            for x in [0.0, 0.25, 0.5, 1.0] {
                assert_eq!(k.gamma(x), x, "linear below the knee, α = {alpha}");
            }
        }
    }

    #[test]
    fn general_path_within_2_ulp_on_dense_grid() {
        // Deterministic sweep: log-spaced x across [1, 2^40], awkward
        // exponents that exercise the table path.
        for alpha in [
            0.1,
            1.0 / 3.0,
            0.37,
            0.49999999,
            0.6,
            2.0 / 3.0,
            0.85,
            0.999,
        ] {
            let k = PowKernel::new(alpha);
            let mut worst = 0u64;
            let mut x = 1.0f64;
            while x < 1.1e12 {
                for dx in [0.0, 1e-9, 0.003, 0.4999] {
                    let v = x * (1.0 + dx);
                    let d = ulp_diff(k.eval(v), v.powf(alpha));
                    worst = worst.max(d);
                }
                x *= 1.37;
            }
            assert!(worst <= 2, "α = {alpha}: worst ulp diff {worst}");
        }
    }

    #[test]
    fn denormal_adjacent_and_extreme_inputs_defer_to_powf() {
        let k = PowKernel::new(0.37);
        for x in [
            0.0,
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::MAX,
            f64::INFINITY,
        ] {
            assert_eq!(k.eval(x).to_bits(), x.powf(0.37).to_bits(), "x = {x}");
        }
        // The smallest *normal* takes the fast path and keeps the 2-ulp bound.
        let x = f64::MIN_POSITIVE;
        assert!(ulp_diff(k.eval(x), x.powf(0.37)) <= 2);
        assert!(k.eval(f64::NAN).is_nan());
    }

    #[test]
    fn invert_round_trips_through_eval() {
        for alpha in [0.2, 0.25, 1.0 / 3.0, 0.5, 0.75, 0.9] {
            let k = PowKernel::new(alpha);
            for r in [1.0, 1.5, 2.0, 7.3, 100.0] {
                let x = k.invert(r);
                let back = k.eval(x);
                assert!(
                    (back - r).abs() <= 1e-12 * r,
                    "α = {alpha}, r = {r}: invert → {x}, eval → {back}"
                );
            }
        }
        // α = 1 and α = 0 endpoints.
        assert_eq!(PowKernel::new(1.0).invert(3.5), 3.5);
        assert_eq!(PowKernel::new(0.0).invert(2.0), f64::INFINITY);
    }

    #[test]
    fn for_curve_covers_the_power_family_only() {
        assert_eq!(
            PowKernel::for_curve(&Curve::FullyParallel).unwrap().alpha(),
            1.0
        );
        assert_eq!(
            PowKernel::for_curve(&Curve::Sequential).unwrap().alpha(),
            0.0
        );
        assert_eq!(
            PowKernel::for_curve(&Curve::power(0.3)).unwrap().alpha(),
            0.3
        );
        assert!(PowKernel::for_curve(&Curve::try_amdahl(0.25).unwrap()).is_none());
    }

    /// Every kernel class the classifier can produce, including the two
    /// exact endpoints, all three sqrt chains, the general table path, and
    /// the powf reference arm.
    fn all_class_kernels() -> Vec<PowKernel> {
        let mut ks: Vec<PowKernel> = [0.0, 0.25, 0.5, 0.75, 1.0, 0.37, 1.0 / 3.0, 0.999]
            .iter()
            .map(|&a| PowKernel::new(a))
            .collect();
        ks.push(PowKernel::powf_reference(0.6));
        ks
    }

    #[test]
    fn batch_apis_handle_empty_singleton_odd_and_large_lengths() {
        for k in all_class_kernels() {
            for n in [0usize, 1, 7, 1023] {
                let xs: Vec<f64> = (0..n)
                    .map(|i| 0.5 + (i as f64) * (1.5 + i as f64 * 0.37))
                    .collect();
                let mut got = vec![f64::NAN; n];
                k.eval_batch(&xs, &mut got);
                for (&x, &g) in xs.iter().zip(&got) {
                    assert_eq!(g.to_bits(), k.eval(x).to_bits(), "eval α={}", k.alpha());
                }
                k.gamma_batch(&xs, &mut got);
                for (&x, &g) in xs.iter().zip(&got) {
                    assert_eq!(g.to_bits(), k.gamma(x).to_bits(), "gamma α={}", k.alpha());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn batch_apis_reject_mismatched_lengths() {
        let mut out = [0.0; 2];
        PowKernel::new(0.5).gamma_batch(&[1.0, 2.0, 3.0], &mut out);
    }

    #[test]
    fn gamma_by_class_matches_per_job_scalar() {
        let kernels = all_class_kernels();
        let mut out = Vec::new();
        for share in [0.0, 0.5, 1.0, 1.0 + f64::EPSILON, 2.5, 8.0, 1e6] {
            gamma_by_class(&kernels, share, &mut out);
            assert_eq!(out.len(), kernels.len());
            for (k, &g) in kernels.iter().zip(&out) {
                assert_eq!(g.to_bits(), k.gamma(share).to_bits(), "α={}", k.alpha());
            }
        }
        // Capacity is reused, not reallocated, across refills.
        let cap = out.capacity();
        gamma_by_class(&kernels, 3.0, &mut out);
        assert_eq!(out.capacity(), cap);
    }

    proptest::proptest! {
        #[test]
        fn gamma_batch_bit_identical_to_scalar_general_alpha(
            alpha in 0.000001f64..0.999999,
            mant in 1.0f64..2.0,
            exp in 0u32..40,
            len in 0usize..33,
        ) {
            // Log-uniform base point x ∈ [1, 2^40); the batch fans out a
            // deterministic spread around it (and dips below the knee) so
            // one case covers many magnitudes at once.
            let x = mant * f64::from(2u32).powi(
                i32::try_from(exp).expect("exp < 40 fits i32"));
            let xs: Vec<f64> = (0..len)
                .map(|i| {
                    let t = i as f64 / 8.0;
                    if i % 4 == 3 { t.min(1.0) * 0.9 } else { x * (1.0 + t) }
                })
                .collect();
            let k = PowKernel::new(alpha);
            let mut out = vec![0.0; xs.len()];
            k.gamma_batch(&xs, &mut out);
            for (&xi, &g) in xs.iter().zip(&out) {
                proptest::prop_assert_eq!(g.to_bits(), k.gamma(xi).to_bits());
            }
            k.eval_batch(&xs, &mut out);
            for (&xi, &g) in xs.iter().zip(&out) {
                proptest::prop_assert_eq!(g.to_bits(), k.eval(xi).to_bits());
            }
        }

        #[test]
        fn gamma_batch_bit_identical_on_classified_kernels(
            class in 0usize..6,
            mant in 1.0f64..2.0,
            exp in 0u32..40,
        ) {
            // The endpoint and sqrt-chain classes, plus the reference arm.
            let k = match class {
                0 => PowKernel::new(0.0),
                1 => PowKernel::new(1.0),
                2 => PowKernel::new(0.5),
                3 => PowKernel::new(0.25),
                4 => PowKernel::new(0.75),
                _ => PowKernel::powf_reference(0.5),
            };
            let x = mant * f64::from(2u32).powi(
                i32::try_from(exp).expect("exp < 40 fits i32"));
            let xs = [0.0, 0.5, 1.0, x, x * 1.0000001, x * 2.0];
            let mut out = [0.0; 6];
            k.gamma_batch(&xs, &mut out);
            for (&xi, &g) in xs.iter().zip(&out) {
                proptest::prop_assert_eq!(g.to_bits(), k.gamma(xi).to_bits());
            }
        }

        #[test]
        fn eval_matches_powf_within_2_ulp(
            alpha in 0.000001f64..0.999999,
            mant in 1.0f64..2.0,
            exp in 0u32..40,
        ) {
            // Log-uniform x ∈ [1, 2^40): uniform mantissa × uniform binade.
            let x = mant * f64::from(2u32).powi(
                i32::try_from(exp).expect("exp < 40 fits i32"));
            let k = PowKernel::new(alpha);
            let d = ulp_diff(k.eval(x), x.powf(alpha));
            proptest::prop_assert!(d <= 2, "α = {}, x = {}: {} ulp", alpha, x, d);
        }

        #[test]
        fn eval_invert_round_trips(alpha in 0.05f64..1.0, r in 1.0f64..1e6) {
            let k = PowKernel::new(alpha);
            let x = k.invert(r);
            let back = k.eval(x);
            proptest::prop_assert!(
                (back - r).abs() <= 1e-11 * r,
                "α = {}, r = {}: x = {}, back = {}", alpha, r, x, back
            );
        }

        #[test]
        fn gamma_continuous_at_knee(alpha in 0.0f64..=1.0) {
            let k = PowKernel::new(alpha);
            let below = k.gamma(1.0 - 1e-12);
            let above = k.gamma(1.0 + 1e-12);
            proptest::prop_assert!((below - above).abs() < 1e-9);
        }
    }
}
