//! Error type for curve construction and validation.

use std::fmt;

/// Why a speed-up curve description was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CurveError {
    /// Power-law exponent outside `[0, 1]`.
    AlphaOutOfRange {
        /// The offending exponent.
        alpha: f64,
    },
    /// Amdahl serial fraction outside `[0, 1]`.
    SerialFractionOutOfRange {
        /// The offending fraction.
        fraction: f64,
    },
    /// A piecewise-linear curve whose breakpoints are not strictly
    /// increasing in `x`.
    NonIncreasingBreakpoints {
        /// Index of the first offending breakpoint.
        index: usize,
    },
    /// A piecewise-linear curve that decreases somewhere.
    Decreasing {
        /// Index of the first offending breakpoint.
        index: usize,
    },
    /// A piecewise-linear curve that is not concave (a segment slope
    /// increases).
    NotConcave {
        /// Index of the segment whose slope exceeds its predecessor's.
        index: usize,
    },
    /// A piecewise-linear curve that does not start at the origin.
    MissingOrigin,
    /// A piecewise-linear curve with fewer than two breakpoints.
    TooFewBreakpoints,
    /// A value (breakpoint coordinate, exponent, …) was NaN or infinite.
    NotFinite,
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::AlphaOutOfRange { alpha } => {
                write!(f, "power-law exponent α={alpha} outside [0, 1]")
            }
            CurveError::SerialFractionOutOfRange { fraction } => {
                write!(f, "Amdahl serial fraction {fraction} outside [0, 1]")
            }
            CurveError::NonIncreasingBreakpoints { index } => {
                write!(
                    f,
                    "breakpoint {index}: x-coordinates must be strictly increasing"
                )
            }
            CurveError::Decreasing { index } => {
                write!(f, "breakpoint {index}: curve must be non-decreasing")
            }
            CurveError::NotConcave { index } => {
                write!(f, "segment {index}: slope increases, curve must be concave")
            }
            CurveError::MissingOrigin => write!(f, "piecewise curve must start at (0, 0)"),
            CurveError::TooFewBreakpoints => {
                write!(f, "piecewise curve needs at least two breakpoints")
            }
            CurveError::NotFinite => write!(f, "curve parameter is NaN or infinite"),
        }
    }
}

impl std::error::Error for CurveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msg = CurveError::AlphaOutOfRange { alpha: 1.5 }.to_string();
        assert!(msg.contains("1.5"));
        assert!(msg.contains("[0, 1]"));
        let msg = CurveError::NotConcave { index: 3 }.to_string();
        assert!(msg.contains("3"));
    }
}
