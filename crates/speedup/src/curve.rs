//! The [`Curve`] enum: every speed-up curve shape used in the repository.

use serde::{Deserialize, Serialize};

use crate::amdahl::amdahl_rate;
use crate::error::CurveError;
use crate::piecewise::PiecewiseLinear;
use crate::power::power_rate;

/// A speed-up curve `Γ` mapping a (fractional) processor allocation to a
/// processing rate.
///
/// All variants are non-decreasing, concave, and satisfy `Γ(0) = 0` and
/// `Γ(x) ≤ x` — the properties the SPAA'14 analysis relies on. Sub-processor
/// allocations are always linear (`Γ(x) = x` for `x ≤ 1`) except for
/// [`Curve::Piecewise`], which may be any valid concave shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Curve {
    /// `Γ(x) = x`: fully parallelizable (the paper's `α = 1`).
    FullyParallel,
    /// `Γ(x) = min(x, 1)`: sequential (the paper's `α = 0`).
    Sequential,
    /// The paper's power law: `Γ(x) = x` for `x ≤ 1`, `x^α` for `x ≥ 1`.
    Power {
        /// Parallelizability exponent `α ∈ [0, 1]`.
        alpha: f64,
    },
    /// Amdahl's law with the given serial fraction (extension).
    Amdahl {
        /// Serial fraction `s ∈ [0, 1]`; the speed-up saturates at `1/s`.
        serial_fraction: f64,
    },
    /// An arbitrary concave non-decreasing piecewise-linear curve.
    Piecewise(PiecewiseLinear),
}

impl Curve {
    /// A power-law curve, panicking if `α ∉ [0, 1]`.
    ///
    /// Use [`Curve::try_power`] for fallible construction.
    pub fn power(alpha: f64) -> Self {
        // lint:allow(L007) curve construction, not per-event evaluation; an out-of-range exponent is a programming error caught at build time
        Self::try_power(alpha).expect("power-law exponent must lie in [0, 1]")
    }

    /// A power-law curve, rejecting `α ∉ [0, 1]`.
    pub fn try_power(alpha: f64) -> Result<Self, CurveError> {
        if !alpha.is_finite() {
            return Err(CurveError::NotFinite);
        }
        if !(0.0..=1.0).contains(&alpha) {
            return Err(CurveError::AlphaOutOfRange { alpha });
        }
        Ok(Curve::Power { alpha })
    }

    /// An Amdahl curve, rejecting serial fractions outside `[0, 1]`.
    pub fn try_amdahl(serial_fraction: f64) -> Result<Self, CurveError> {
        if !serial_fraction.is_finite() {
            return Err(CurveError::NotFinite);
        }
        if !(0.0..=1.0).contains(&serial_fraction) {
            return Err(CurveError::SerialFractionOutOfRange {
                fraction: serial_fraction,
            });
        }
        Ok(Curve::Amdahl { serial_fraction })
    }

    /// Re-checks the variant's invariants (useful after deserialization).
    pub fn validate(&self) -> Result<(), CurveError> {
        match self {
            Curve::FullyParallel | Curve::Sequential => Ok(()),
            Curve::Power { alpha } => Self::try_power(*alpha).map(|_| ()),
            Curve::Amdahl { serial_fraction } => Self::try_amdahl(*serial_fraction).map(|_| ()),
            Curve::Piecewise(p) => PiecewiseLinear::new(p.points().to_vec()).map(|_| ()),
        }
    }

    /// The processing rate with `x ≥ 0` processors.
    #[inline]
    pub fn rate(&self, x: f64) -> f64 {
        match self {
            Curve::FullyParallel => x,
            Curve::Sequential => x.min(1.0),
            Curve::Power { alpha } => power_rate(*alpha, x),
            Curve::Amdahl { serial_fraction } => amdahl_rate(*serial_fraction, x),
            Curve::Piecewise(p) => p.rate(x),
        }
    }

    /// Marginal gain of the `(k+1)`-th whole processor:
    /// `Γ(k + 1) − Γ(k)`.
    ///
    /// This is the quantity the paper's §3 greedy hybrid maximizes
    /// (normalized by remaining work) when assigning processors one by one.
    #[inline]
    pub fn marginal(&self, k: u32) -> f64 {
        self.rate(f64::from(k) + 1.0) - self.rate(f64::from(k))
    }

    /// The smallest allocation achieving rate `r`, if any.
    ///
    /// Returns `None` when the curve saturates below `r` (e.g. a sequential
    /// job can never be processed faster than rate 1).
    pub fn inverse_rate(&self, r: f64) -> Option<f64> {
        debug_assert!(r >= 0.0);
        if r <= 1.0 && !matches!(self, Curve::Piecewise(_)) {
            // The model curves are the identity on [0, 1]; a general
            // piecewise curve need not be and takes the segment walk below.
            return Some(r);
        }
        match self {
            Curve::FullyParallel => Some(r),
            Curve::Sequential => None,
            Curve::Power { alpha } => {
                if crate::float::exact_eq(*alpha, 0.0) {
                    None
                } else {
                    Some(crate::kernel::PowKernel::new(*alpha).invert(r))
                }
            }
            Curve::Amdahl { serial_fraction } => {
                let s = *serial_fraction;
                if s > 0.0 && r >= 1.0 / s {
                    None
                } else {
                    // r = 1/(s + (1-s)/x)  ⇒  x = (1-s) / (1/r - s)
                    Some((1.0 - s) / (1.0 / r - s))
                }
            }
            Curve::Piecewise(p) => {
                // Walk segments; handle the extrapolated tail.
                let pts = p.points();
                for w in pts.windows(2) {
                    // lint:allow(L007) windows(2) yields exactly two elements per item
                    let (x0, y0) = w[0];
                    // lint:allow(L007) windows(2) yields exactly two elements per item
                    let (x1, y1) = w[1];
                    if r <= y1 {
                        if y1 == y0 {
                            return Some(x0);
                        }
                        return Some(x0 + (x1 - x0) * (r - y0) / (y1 - y0));
                    }
                }
                // lint:allow(L007) piecewise curves carry >= 2 points, validated at construction
                let (xa, ya) = pts[pts.len() - 2];
                // lint:allow(L007) piecewise curves carry >= 2 points, validated at construction
                let (xb, yb) = pts[pts.len() - 1];
                let slope = (yb - ya) / (xb - xa);
                if slope <= 0.0 {
                    None
                } else {
                    Some(xb + (r - yb) / slope)
                }
            }
        }
    }

    /// Time to drain `work` units at a constant allocation of `x`
    /// processors; `f64::INFINITY` when the rate is zero.
    #[inline]
    pub fn time_to_finish(&self, work: f64, x: f64) -> f64 {
        let rate = self.rate(x);
        if rate <= 0.0 {
            f64::INFINITY
        } else {
            work / rate
        }
    }

    /// The parallelizability exponent if this is a power-family curve
    /// (`FullyParallel` reports 1, `Sequential` reports 0).
    pub fn alpha(&self) -> Option<f64> {
        match self {
            Curve::FullyParallel => Some(1.0),
            Curve::Sequential => Some(0.0),
            Curve::Power { alpha } => Some(*alpha),
            _ => None,
        }
    }

    /// The compiled power kernel for this curve, when it belongs to the
    /// power family (see [`crate::PowKernel::for_curve`]); hot loops cache
    /// this once per job instead of re-dispatching `rate` per event.
    #[inline]
    pub fn kernel(&self) -> Option<crate::kernel::PowKernel> {
        crate::kernel::PowKernel::for_curve(self)
    }

    /// A short human-readable label (used in tables and traces).
    pub fn label(&self) -> String {
        match self {
            Curve::FullyParallel => "par".to_string(),
            Curve::Sequential => "seq".to_string(),
            Curve::Power { alpha } => format!("pow({alpha})"),
            Curve::Amdahl { serial_fraction } => format!("amdahl({serial_fraction})"),
            Curve::Piecewise(p) => format!("pwl[{}]", p.points().len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn construction_validates_alpha() {
        assert!(Curve::try_power(0.5).is_ok());
        assert!(Curve::try_power(-0.1).is_err());
        assert!(Curve::try_power(1.1).is_err());
        assert!(Curve::try_power(f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn power_panics_on_bad_alpha() {
        let _ = Curve::power(2.0);
    }

    #[test]
    fn rates_agree_across_equivalent_variants() {
        for x in [0.0, 0.5, 1.0, 2.0, 10.0, 64.0] {
            assert!(approx_eq(
                Curve::FullyParallel.rate(x),
                Curve::power(1.0).rate(x)
            ));
            assert!(approx_eq(
                Curve::Sequential.rate(x),
                Curve::power(0.0).rate(x)
            ));
        }
    }

    #[test]
    fn marginal_is_positive_and_decreasing_for_power() {
        let c = Curve::power(0.5);
        let mut prev = f64::INFINITY;
        for k in 0..20 {
            let m = c.marginal(k);
            assert!(m > 0.0);
            assert!(m <= prev + 1e-12, "marginal not decreasing at k={k}");
            prev = m;
        }
    }

    #[test]
    fn inverse_rate_round_trips() {
        let cases = [
            Curve::FullyParallel,
            Curve::power(0.5),
            Curve::power(0.9),
            Curve::try_amdahl(0.25).unwrap(),
            Curve::Piecewise(
                PiecewiseLinear::new(vec![(0.0, 0.0), (2.0, 2.0), (8.0, 5.0)]).unwrap(),
            ),
        ];
        for c in &cases {
            for r in [0.25, 1.0, 1.5, 2.5] {
                if let Some(x) = c.inverse_rate(r) {
                    assert!(approx_eq(c.rate(x), r), "{c:?} at r={r}: x={x}");
                }
            }
        }
    }

    #[test]
    fn inverse_rate_detects_saturation() {
        assert_eq!(Curve::Sequential.inverse_rate(1.5), None);
        assert_eq!(Curve::power(0.0).inverse_rate(2.0), None);
        // Amdahl with s = 0.5 saturates at rate 2.
        let c = Curve::try_amdahl(0.5).unwrap();
        assert_eq!(c.inverse_rate(2.0), None);
        assert!(c.inverse_rate(1.9).is_some());
        // Flat piecewise tail.
        let flat = Curve::Piecewise(PiecewiseLinear::saturating(2.0).unwrap());
        assert_eq!(flat.inverse_rate(3.0), None);
    }

    #[test]
    fn time_to_finish_handles_zero_rate() {
        assert_eq!(Curve::power(0.5).time_to_finish(4.0, 0.0), f64::INFINITY);
        assert!(approx_eq(Curve::power(0.5).time_to_finish(4.0, 4.0), 2.0));
    }

    #[test]
    fn gamma_never_exceeds_allocation() {
        // Γ(x) ≤ x for all variants: the fact that lets the paper bound
        // aggregate processing rate by m (used by the SRPT-fluid OPT bound).
        let curves = [
            Curve::FullyParallel,
            Curve::Sequential,
            Curve::power(0.3),
            Curve::power(0.99),
            Curve::try_amdahl(0.1).unwrap(),
        ];
        for c in &curves {
            for i in 0..200 {
                let x = f64::from(i) * 0.25;
                assert!(c.rate(x) <= x + 1e-12, "{c:?} violates Γ(x) ≤ x at {x}");
            }
        }
    }

    #[test]
    fn validate_accepts_all_well_formed_variants() {
        let curves = vec![
            Curve::FullyParallel,
            Curve::Sequential,
            Curve::power(0.42),
            Curve::try_amdahl(0.05).unwrap(),
            Curve::Piecewise(PiecewiseLinear::saturating(3.0).unwrap()),
        ];
        for c in curves {
            assert!(c.validate().is_ok(), "{c:?}");
        }
        // A hand-built (deserialized-like) bad variant is caught.
        assert!(Curve::Power { alpha: 7.0 }.validate().is_err());
        assert!(Curve::Amdahl {
            serial_fraction: -1.0
        }
        .validate()
        .is_err());
    }

    proptest::proptest! {
        #[test]
        fn power_rate_monotone_and_concave(alpha in 0.0f64..=1.0, a in 0.0f64..64.0, b in 0.0f64..64.0) {
            let c = Curve::Power { alpha };
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            // Monotone.
            proptest::prop_assert!(c.rate(lo) <= c.rate(hi) + 1e-9);
            // Midpoint concavity.
            let mid = c.rate((lo + hi) / 2.0);
            let chord = (c.rate(lo) + c.rate(hi)) / 2.0;
            proptest::prop_assert!(mid + 1e-9 >= chord);
        }

        #[test]
        fn proposition_1_ratio_bound(alpha in 0.0f64..=1.0, c_small in 0.01f64..32.0, scale in 1.0f64..8.0) {
            // Paper Proposition 1: for B ≥ C > 0, Γ(B)/Γ(C) ≤ B/C
            // (concavity + Γ(0) = 0).
            let b = c_small * scale;
            let curve = Curve::Power { alpha };
            let lhs = curve.rate(b) / curve.rate(c_small);
            let rhs = b / c_small;
            proptest::prop_assert!(lhs <= rhs + 1e-9);
        }
    }
}
