//! The paper's power-law speed-up curve.

/// Rate of the SPAA'14 power-law curve: `Γ(x) = x` for `x ≤ 1`,
/// `Γ(x) = x^α` for `x ≥ 1`.
///
/// `α = 1` degenerates to fully parallelizable (`Γ(x) = x` everywhere) and
/// `α = 0` to sequential (`Γ(x) = 1` for `x ≥ 1`). The two branches agree at
/// `x = 1`, so the curve is continuous; it is concave because the slope
/// drops from `1` to `α·x^{α-1} ≤ 1` at the knee and keeps decreasing.
///
/// The caller is responsible for `α ∈ [0, 1]` and `x ≥ 0` (checked in debug
/// builds); [`crate::Curve::power`] validates `α` at construction time.
#[inline]
pub fn power_rate(alpha: f64, x: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&alpha), "alpha out of range: {alpha}");
    debug_assert!(x >= 0.0, "negative processor allocation: {x}");
    // α is a constructed model parameter, never computed: the endpoint
    // variants (and the sqrt-chain exponents) classify exactly inside the
    // kernel. Hot loops that evaluate one α repeatedly should hold a
    // [`crate::PowKernel`] instead of re-classifying per call.
    if x <= 1.0 {
        x
    } else {
        crate::kernel::PowKernel::new(alpha).eval(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn linear_below_one_processor() {
        for alpha in [0.0, 0.3, 0.7, 1.0] {
            assert_eq!(power_rate(alpha, 0.0), 0.0);
            assert_eq!(power_rate(alpha, 0.25), 0.25);
            assert_eq!(power_rate(alpha, 1.0), 1.0);
        }
    }

    #[test]
    fn power_above_one_processor() {
        assert!(approx_eq(power_rate(0.5, 4.0), 2.0));
        assert!(approx_eq(power_rate(0.5, 9.0), 3.0));
        assert!(approx_eq(power_rate(1.0, 7.0), 7.0));
        assert!(approx_eq(power_rate(0.0, 7.0), 1.0));
    }

    #[test]
    fn continuous_at_the_knee() {
        for alpha in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let below = power_rate(alpha, 1.0 - 1e-12);
            let above = power_rate(alpha, 1.0 + 1e-12);
            assert!(
                approx_eq(below, above),
                "discontinuity at knee for α={alpha}"
            );
        }
    }

    #[test]
    fn alpha_extremes_match_special_curves() {
        for x in [0.1, 0.9, 1.0, 2.0, 16.0, 1000.0] {
            // α = 1 ≡ fully parallel
            assert!(approx_eq(power_rate(1.0, x), x));
            // α = 0 ≡ sequential
            assert!(approx_eq(power_rate(0.0, x), x.min(1.0)));
        }
    }
}
