//! Batch workloads: everything released at time 0.
//!
//! This is the setting of Edmonds et al.'s classic result that EQUI is
//! 2-competitive for total flow time with *arbitrary* speed-up curves —
//! experiment T4 uses these generators to sanity-check the whole substrate
//! against prior art.

use parsched_sim::{Instance, JobId, JobSpec, SimError};
use parsched_speedup::Curve;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::random::{AlphaDist, SizeDist};

/// A batch workload: `n` jobs all released at `t = 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchWorkload {
    /// Number of jobs.
    pub n: usize,
    /// Size distribution.
    pub sizes: SizeDist,
    /// Parallelizability distribution.
    pub alphas: AlphaDist,
    /// RNG seed.
    pub seed: u64,
}

impl BatchWorkload {
    /// Generates the instance.
    pub fn generate(&self) -> Result<Instance, SimError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let jobs = (0..self.n)
            .map(|i| {
                let size = self.sizes.sample(&mut rng).max(1e-9);
                let alpha = self.alphas.sample(&mut rng).clamp(0.0, 1.0);
                JobSpec::new(JobId(i as u64), 0.0, size, Curve::power(alpha))
            })
            .collect();
        Instance::new(jobs)
    }

    /// A batch with mixed *curve shapes* (power, Amdahl, saturating
    /// piecewise) rather than only the paper's power family — exercises the
    /// "arbitrary speed-up curves" claim of EQUI's guarantee.
    pub fn generate_mixed_curves(&self) -> Result<Instance, SimError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let jobs = (0..self.n)
            .map(|i| {
                let size = self.sizes.sample(&mut rng).max(1e-9);
                let alpha = self.alphas.sample(&mut rng).clamp(0.0, 1.0);
                let curve = match i % 3 {
                    0 => Curve::power(alpha),
                    1 => Curve::try_amdahl(1.0 - alpha).expect("valid fraction"),
                    _ => Curve::Piecewise(
                        parsched_speedup::PiecewiseLinear::saturating(1.0 + 4.0 * alpha)
                            .expect("valid knee"),
                    ),
                };
                JobSpec::new(JobId(i as u64), 0.0, size, curve)
            })
            .collect();
        Instance::new(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_jobs_release_at_zero() {
        let w = BatchWorkload {
            n: 64,
            sizes: SizeDist::LogUniform { p: 32.0 },
            alphas: AlphaDist::Fixed(0.5),
            seed: 1,
        };
        let inst = w.generate().unwrap();
        assert_eq!(inst.len(), 64);
        assert!(inst.jobs().iter().all(|j| j.release == 0.0));
    }

    #[test]
    fn mixed_curves_cycle_through_shapes() {
        let w = BatchWorkload {
            n: 9,
            sizes: SizeDist::Fixed(4.0),
            alphas: AlphaDist::Fixed(0.5),
            seed: 2,
        };
        let inst = w.generate_mixed_curves().unwrap();
        let labels: Vec<String> = inst.jobs().iter().map(|j| j.curve.label()).collect();
        assert!(labels.iter().any(|l| l.starts_with("pow")));
        assert!(labels.iter().any(|l| l.starts_with("amdahl")));
        assert!(labels.iter().any(|l| l.starts_with("pwl")));
    }

    #[test]
    fn deterministic_per_seed() {
        let w = BatchWorkload {
            n: 16,
            sizes: SizeDist::Pareto {
                p: 16.0,
                shape: 1.2,
            },
            alphas: AlphaDist::Uniform { lo: 0.1, hi: 0.9 },
            seed: 5,
        };
        assert_eq!(w.generate().unwrap(), w.generate().unwrap());
    }
}
