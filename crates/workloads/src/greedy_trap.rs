//! The Lemma 10 construction: the instance family on which the "natural"
//! greedy hybrid is `Ω(max{P, n^{1/3}})`-competitive.

use parsched_sim::{AllocationPlan, Instance, JobId, JobSpec, SimError};
use parsched_speedup::Curve;
use serde::{Deserialize, Serialize};

/// The paper's §3 lower-bound family (Lemma 10), with `ε = 1 − α`:
///
/// * `m − m^{1−ε}` **long jobs** of size `m` released at time 0;
/// * from time 0 to `m − 1/m^{1−ε}`, one **unit job** every `1/m^{1−ε}`
///   time units;
/// * from time `m + 1`, a **stream** of unit jobs every `1/m^{1−ε}` time
///   units lasting `X` time units (the paper takes `X = m²`).
///
/// The greedy hybrid pours all `m` processors into each arriving unit job
/// (the marginal gain `(k+1)^α − k^α` per unit work beats `1/m` per unit of
/// a long job whenever `α < 1`), so the long jobs starve for the entire
/// stream: total flow `≈ (m − m^{1−ε}) · X`. The paper's explicit
/// *alternative algorithm* — reproduced here as an executable
/// [`AllocationPlan`] — achieves `≈ m² + X`, giving ratio `Ω(m) = Ω(P)`
/// (note `P = m` on this family) and `Ω(n^{1/3})` since `n = Θ(m^{3−ε})`.
///
/// `m^{1−ε} = m^α` is rounded down to an integer `K`; the construction is
/// exact whenever `m^α` is integral and within rounding otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GreedyTrap {
    /// Number of processors (also the long-job size, so `P = m`).
    pub m: usize,
    /// Parallelizability exponent `α ∈ (0, 1)`.
    pub alpha: f64,
    /// Stream duration `X` (the paper uses `X = m²`; smaller values keep
    /// sweeps fast and only scale the ratio's saturation, not its shape).
    pub stream_duration: f64,
}

impl GreedyTrap {
    /// The paper's construction with `X = m²`.
    ///
    /// ```
    /// use parsched_workloads::GreedyTrap;
    /// let trap = GreedyTrap::new(16, 0.5);
    /// assert_eq!(trap.k(), 4);              // m^α = 4 unit jobs per time unit
    /// assert_eq!(trap.num_long(), 12);      // m − K long jobs of size m
    /// let instance = trap.instance().unwrap();
    /// assert_eq!(instance.p_max(), 16.0);   // P = m on this family
    /// ```
    pub fn new(m: usize, alpha: f64) -> Self {
        assert!(m >= 2, "need at least 2 processors");
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "Lemma 10 needs intermediate parallelizability, got α={alpha}"
        );
        Self {
            m,
            alpha,
            stream_duration: (m * m) as f64,
        }
    }

    /// Overrides the stream duration `X`.
    pub fn with_stream_duration(mut self, x: f64) -> Self {
        assert!(x > 0.0 && x.is_finite());
        self.stream_duration = x;
        self
    }

    /// `K = ⌊m^α⌋` — the unit-job arrival rate and the machine count the
    /// alternative schedule reserves for unit jobs (the paper's `m^{1−ε}`).
    pub fn k(&self) -> usize {
        ((self.m as f64).powf(self.alpha).floor() as usize).clamp(1, self.m - 1)
    }

    /// Number of long jobs, `m − K`.
    pub fn num_long(&self) -> usize {
        self.m - self.k()
    }

    /// Number of unit jobs released before time `m` (`m · K`).
    pub fn num_phase1_units(&self) -> usize {
        self.m * self.k()
    }

    /// Number of unit jobs in the final stream (`X · K`).
    pub fn num_stream_units(&self) -> usize {
        (self.stream_duration * self.k() as f64).round() as usize
    }

    /// Ids of the long jobs (released first, at time 0).
    pub fn long_ids(&self) -> impl Iterator<Item = JobId> {
        (0..self.num_long() as u64).map(JobId)
    }

    fn curve(&self) -> Curve {
        Curve::power(self.alpha)
    }

    /// Builds the concrete instance.
    pub fn instance(&self) -> Result<Instance, SimError> {
        let m = self.m as f64;
        let k = self.k();
        let delta = 1.0 / k as f64;
        let curve = self.curve();
        let mut jobs =
            Vec::with_capacity(self.num_long() + self.num_phase1_units() + self.num_stream_units());
        let mut next_id = 0u64;
        let mut push = |jobs: &mut Vec<JobSpec>, release: f64, size: f64| {
            jobs.push(JobSpec::new(JobId(next_id), release, size, curve.clone()));
            next_id += 1;
        };
        for _ in 0..self.num_long() {
            push(&mut jobs, 0.0, m);
        }
        for j in 0..self.num_phase1_units() {
            push(&mut jobs, j as f64 * delta, 1.0);
        }
        for j in 0..self.num_stream_units() {
            push(&mut jobs, m + 1.0 + j as f64 * delta, 1.0);
        }
        Instance::new(jobs)
    }

    /// The paper's *alternative algorithm* as an executable plan:
    ///
    /// * `m − K` machines run the long jobs non-preemptively on `[0, m)`;
    /// * each pre-stream unit job gets its own machine for one time unit on
    ///   arrival (exactly `K` are in flight at any moment);
    /// * each stream job is processed in `1/K` time using `K^{1/α} ≤ m`
    ///   processors (rate exactly `K`), finishing just as the next arrives.
    pub fn alternative_plan(&self) -> Result<AllocationPlan, SimError> {
        let m = self.m as f64;
        let k = self.k();
        let delta = 1.0 / k as f64;
        let mut tracks: Vec<(f64, f64, JobId, f64)> = Vec::new();
        let mut id = 0u64;
        for _ in 0..self.num_long() {
            tracks.push((0.0, m, JobId(id), 1.0));
            id += 1;
        }
        for j in 0..self.num_phase1_units() {
            let t = j as f64 * delta;
            tracks.push((t, t + 1.0, JobId(id), 1.0));
            id += 1;
        }
        // Processors needed for rate K on the power curve: K^{1/α}.
        let stream_share = (k as f64).powf(1.0 / self.alpha).min(m);
        for j in 0..self.num_stream_units() {
            let t = m + 1.0 + j as f64 * delta;
            tracks.push((t, t + delta, JobId(id), stream_share));
            id += 1;
        }
        AllocationPlan::from_tracks(&tracks, m)
    }

    /// Closed-form total flow of the alternative schedule:
    /// `m·K (units) + (m − K)·m (longs) + X (stream)`.
    pub fn alternative_flow_closed_form(&self) -> f64 {
        let m = self.m as f64;
        let k = self.k() as f64;
        m * k + (m - k) * m + self.num_stream_units() as f64 / k
    }

    /// The paper's dominant term for greedy's flow:
    /// `(m − m^{1−ε}) · X` — the long jobs starving through the stream.
    pub fn predicted_greedy_flow_lower(&self) -> f64 {
        self.num_long() as f64 * self.stream_duration
    }

    /// The ratio shape Lemma 10 predicts: `Ω(P) = Ω(m)` once the stream
    /// dominates.
    pub fn predicted_ratio_lower(&self) -> f64 {
        self.predicted_greedy_flow_lower() / self.alternative_flow_closed_form()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::{simulate, PlannedPolicy};

    fn small_trap() -> GreedyTrap {
        GreedyTrap::new(4, 0.5).with_stream_duration(8.0)
    }

    #[test]
    fn counts_match_construction() {
        let t = small_trap();
        assert_eq!(t.k(), 2); // 4^0.5
        assert_eq!(t.num_long(), 2);
        assert_eq!(t.num_phase1_units(), 8);
        assert_eq!(t.num_stream_units(), 16);
        let inst = t.instance().unwrap();
        assert_eq!(inst.len(), 2 + 8 + 16);
        // P = m: sizes span [1, m].
        assert_eq!(inst.p_max(), 4.0);
        assert_eq!(inst.p_min(), 1.0);
    }

    #[test]
    fn unit_jobs_are_spaced_by_inverse_k() {
        let t = small_trap();
        let inst = t.instance().unwrap();
        let units: Vec<f64> = inst
            .jobs()
            .iter()
            .filter(|j| j.size == 1.0 && j.release < 4.0)
            .map(|j| j.release)
            .collect();
        assert_eq!(units.len(), 8);
        for w in units.windows(2) {
            assert!((w[1] - w[0] - 0.5).abs() < 1e-9);
        }
        // Stream starts at m + 1 = 5.
        let first_stream = inst
            .jobs()
            .iter()
            .filter(|j| j.release > 4.0)
            .map(|j| j.release)
            .fold(f64::INFINITY, f64::min);
        assert!((first_stream - 5.0).abs() < 1e-9);
    }

    #[test]
    fn alternative_plan_is_feasible_and_matches_closed_form() {
        let t = small_trap();
        let inst = t.instance().unwrap();
        let plan = t.alternative_plan().unwrap();
        let outcome = simulate(&inst, &mut PlannedPolicy::named(plan, "alt"), 4.0).unwrap();
        assert_eq!(outcome.metrics.num_jobs, inst.len());
        let expected = t.alternative_flow_closed_form();
        assert!(
            (outcome.metrics.total_flow - expected).abs() / expected < 1e-6,
            "measured {} vs closed form {}",
            outcome.metrics.total_flow,
            expected
        );
    }

    #[test]
    fn alternative_plan_scales_to_larger_m() {
        let t = GreedyTrap::new(16, 0.5).with_stream_duration(16.0);
        let inst = t.instance().unwrap();
        let plan = t.alternative_plan().unwrap();
        let outcome = simulate(&inst, &mut PlannedPolicy::named(plan, "alt"), 16.0).unwrap();
        let expected = t.alternative_flow_closed_form();
        assert!((outcome.metrics.total_flow - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn predicted_ratio_grows_with_m() {
        let r4 = GreedyTrap::new(4, 0.5).predicted_ratio_lower();
        let r16 = GreedyTrap::new(16, 0.5).predicted_ratio_lower();
        let r64 = GreedyTrap::new(64, 0.5).predicted_ratio_lower();
        assert!(r16 > 1.5 * r4, "{r4} {r16}");
        assert!(r64 > 1.5 * r16, "{r16} {r64}");
    }

    #[test]
    #[should_panic(expected = "intermediate parallelizability")]
    fn rejects_alpha_one() {
        let _ = GreedyTrap::new(8, 1.0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Construction invariants across the (m, α) grid: counts are
        /// consistent, the instance validates, the alternative plan is
        /// feasible, and the closed form matches execution.
        #[test]
        fn construction_invariants(m in 2usize..20, alpha in 0.1f64..0.95) {
            let t = GreedyTrap::new(m, alpha).with_stream_duration(4.0);
            proptest::prop_assert_eq!(t.num_long() + t.k(), m);
            proptest::prop_assert!(t.k() >= 1 && t.k() < m);
            let inst = t.instance().expect("valid instance");
            proptest::prop_assert_eq!(
                inst.len(),
                t.num_long() + t.num_phase1_units() + t.num_stream_units()
            );
            let plan = t.alternative_plan().expect("feasible plan");
            let run = simulate(&inst, &mut PlannedPolicy::new(plan), m as f64)
                .expect("plan executes");
            let closed = t.alternative_flow_closed_form();
            proptest::prop_assert!(
                (run.metrics.total_flow - closed).abs() / closed < 1e-6,
                "m={}, α={}: {} vs {}", m, alpha, run.metrics.total_flow, closed
            );
        }
    }
}
