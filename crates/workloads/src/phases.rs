//! The Theorem 2 construction: an **adaptive** adversary forcing every
//! online algorithm to competitive ratio `Ω(log P)`.
//!
//! The instance family (paper §4), parameterized by `α` with `ε = 1 − α`
//! and length-reduction factor `r = ½(1 − 2^{-ε})`:
//!
//! * **Part 1** runs up to `L = ½·log_{1/r} P` phases. Phase `i` has length
//!   `p_i = P·rⁱ` and starts at `s_i = Σ_{j<i} p_j`; it releases `m/2`
//!   *long* jobs of size `p_i` at `s_i` and `m` *short* unit jobs at each
//!   time `s_i + j`, `0 ≤ j ≤ p_i/2 − 1`.
//! * At each phase midpoint `s_i + p_i/2` the adversary inspects the online
//!   algorithm: if at least `m·log_{1/r} P` work remains from phase-`i`
//!   short jobs, it jumps to part 2 immediately (**case 1**); otherwise the
//!   online algorithm must have starved the long jobs, and the adversary
//!   continues to phase `i+1` (after the last phase: **case 2**).
//! * **Part 2** releases `m` unit jobs at each of `stream_len` consecutive
//!   integer times (the paper uses `P²`).
//!
//! Either way the online algorithm carries `Ω(m·log_{1/r} P)` unfinished
//! jobs through the entire stream while OPT carries `O(m)`; the paper's
//! explicit *standard schedules* — built here as executable
//! [`AllocationPlan`]s — certify `OPT = O(m·P²)`.

use std::collections::VecDeque;

use parsched::theory;
use parsched_sim::{
    AllocationPlan, ArrivalSource, Engine, EngineConfig, JobId, JobSpec, NullObserver, Policy,
    RunOutcome, SimError, SystemView, Time,
};
use parsched_speedup::Curve;
use serde::{Deserialize, Serialize};

/// Parameters of the Theorem 2 family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseFamily {
    /// Number of processors (must be even: each phase has `m/2` long jobs).
    pub m: usize,
    /// Parallelizability exponent `α ∈ [0, 1)`.
    pub alpha: f64,
    /// Longest job size `P ≥ 4`.
    pub p: f64,
    /// Number of unit-job waves in part 2 (the paper's `P²`; capped by
    /// default so sweeps stay tractable — the ratio saturates once the
    /// stream dominates, so the cap trades closeness to the asymptote for
    /// run time).
    pub stream_len: usize,
}

impl PhaseFamily {
    /// Creates the family with the default stream length
    /// `min(P², 4096)`.
    ///
    /// ```
    /// use parsched::IntermediateSrpt;
    /// use parsched_workloads::PhaseFamily;
    ///
    /// let fam = PhaseFamily::new(4, 0.5, 64.0).with_stream_len(16);
    /// let (outcome, record) = fam.run_against(&mut IntermediateSrpt::new()).unwrap();
    /// // The adversary committed to a concrete instance…
    /// assert_eq!(outcome.metrics.num_jobs, outcome.instance.len());
    /// // …and its standard-schedule OPT certificate is executable.
    /// let plan = fam.opt_plan(&record).unwrap();
    /// assert!(plan.horizon() > 0.0);
    /// ```
    pub fn new(m: usize, alpha: f64, p: f64) -> Self {
        assert!(
            m >= 2 && m.is_multiple_of(2),
            "m must be even and ≥ 2, got {m}"
        );
        assert!((0.0..1.0).contains(&alpha), "Theorem 2 needs α < 1");
        assert!(p >= 4.0, "P must be at least 4, got {p}");
        Self {
            m,
            alpha,
            p,
            stream_len: ((p * p) as usize).min(4096),
        }
    }

    /// Overrides the part-2 stream length.
    pub fn with_stream_len(mut self, stream_len: usize) -> Self {
        assert!(stream_len >= 1);
        self.stream_len = stream_len;
        self
    }

    /// The length-reduction factor `r = ½(1 − 2^{-ε})`.
    pub fn reduction(&self) -> f64 {
        theory::reduction_factor(self.alpha)
    }

    /// Number of phases `L ≈ ½·log_{1/r} P` (the paper chooses `P` so this
    /// is an integer; we round to the nearest integer, at least 1).
    pub fn num_phases(&self) -> usize {
        (theory::phase_count(self.alpha, self.p).round() as usize).max(1)
    }

    /// Phase length `p_i = P·rⁱ`.
    pub fn phase_len(&self, i: usize) -> f64 {
        self.p * self.reduction().powi(i as i32)
    }

    /// Phase start `s_i = P·(1 − rⁱ)/(1 − r)`.
    pub fn phase_start(&self, i: usize) -> f64 {
        let r = self.reduction();
        self.p * (1.0 - r.powi(i as i32)) / (1.0 - r)
    }

    /// Number of short-job waves in phase `i`: `⌊p_i/2⌋`.
    pub fn short_waves(&self, i: usize) -> usize {
        (self.phase_len(i) / 2.0).floor() as usize
    }

    /// The adversary's trigger: `m·log_{1/r} P` remaining short work.
    pub fn threshold(&self) -> f64 {
        self.m as f64 * theory::log_inv_r(self.alpha, self.p)
    }

    /// Whether `P` is large enough that even the *last* phase carries more
    /// short work than the threshold (the paper's integrality/size side
    /// conditions, `log²_{1/r} P < ¼·((2^ε−1)/(2^ε+1))·√P`, serve the same
    /// purpose). A poorly parameterized family still runs but the case-1
    /// trigger can become unreachable in late phases.
    pub fn is_well_parameterized(&self) -> bool {
        let last = self.num_phases() - 1;
        self.m as f64 * self.short_waves(last) as f64 > self.threshold()
    }

    /// The speed-up curve shared by every job in the family.
    pub fn curve(&self) -> Curve {
        Curve::power(self.alpha)
    }

    /// Creates a fresh adaptive adversary for one run.
    pub fn adversary(&self) -> PhaseAdversary {
        PhaseAdversary::new(*self)
    }

    /// Runs `policy` against the adaptive adversary, returning the online
    /// outcome (which embeds the concrete emitted [`parsched_sim::Instance`]) and the
    /// adversary's record of what it did.
    pub fn run_against(
        &self,
        policy: &mut dyn Policy,
    ) -> Result<(RunOutcome, AdversaryOutcome), SimError> {
        let mut obs = NullObserver;
        self.run_against_observed(policy, &mut obs)
    }

    /// [`PhaseFamily::run_against`] with a custom observer attached to the
    /// online algorithm's engine (e.g. an
    /// [`parsched_sim::AliveTrace`] to measure the backlog `|A(T)|` at the
    /// stream start — the quantity Theorem 2 lower-bounds by
    /// `Ω(m·log_{1/r} P)`).
    pub fn run_against_observed(
        &self,
        policy: &mut dyn Policy,
        observer: &mut dyn parsched_sim::Observer,
    ) -> Result<(RunOutcome, AdversaryOutcome), SimError> {
        let mut adversary = self.adversary();
        let outcome = Engine::new(
            EngineConfig::new(self.m as f64),
            policy,
            &mut adversary,
            observer,
        )
        .run()?;
        let record = adversary.into_outcome();
        Ok((outcome, record))
    }

    /// Builds the paper's explicit feasible schedule ("standard schedule"
    /// plus the case-specific tail) certifying `OPT = O(m·P²)` for the
    /// instance the adversary committed to.
    pub fn opt_plan(&self, record: &AdversaryOutcome) -> Result<AllocationPlan, SimError> {
        let m = self.m as f64;
        let mut tracks: Vec<(Time, Time, JobId, f64)> = Vec::new();
        let standard_through = match record.case {
            StoppingCase::MidPhase { phase } => phase,
            StoppingCase::AllPhases => record.phases.len(),
        };
        // Standard schedule for fully played phases.
        for (i, rec) in record.phases.iter().enumerate().take(standard_through) {
            let s = self.phase_start(i);
            let len = self.phase_len(i);
            for &id in &rec.long_ids {
                tracks.push((s, s + len, id, 1.0));
            }
            let half = len / 2.0;
            for &(t, ref ids) in &rec.short_waves {
                let (now_half, later_half) = ids.split_at(ids.len() / 2);
                for &id in now_half {
                    tracks.push((t, t + 1.0, id, 1.0));
                }
                for &id in later_half {
                    tracks.push((t + half, t + half + 1.0, id, 1.0));
                }
            }
        }
        // Case 1: the interrupted phase ignores its long jobs until after
        // the stream; its short jobs each get a dedicated machine on
        // arrival.
        if let StoppingCase::MidPhase { phase } = record.case {
            let rec = &record.phases[phase];
            for &(t, ref ids) in &rec.short_waves {
                for &id in ids {
                    tracks.push((t, t + 1.0, id, 1.0));
                }
            }
            let stream_end = record.t_part2 + record.stream.len() as f64;
            let len = self.phase_len(phase);
            let dur = len / 2f64.powf(self.alpha);
            for &id in &rec.long_ids {
                tracks.push((stream_end, stream_end + dur, id, 2.0));
            }
        }
        // The stream: one machine per unit job for one time unit.
        for &(t, ref ids) in &record.stream {
            for &id in ids {
                tracks.push((t, t + 1.0, id, 1.0));
            }
        }
        AllocationPlan::from_tracks(&tracks, m)
    }
}

/// Which of the paper's two stopping cases the adversary took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoppingCase {
    /// Case 1: the online algorithm held ≥ the threshold of unfinished
    /// short work at the midpoint of `phase`; part 2 started there.
    MidPhase {
        /// The interrupted phase index.
        phase: usize,
    },
    /// Case 2: every phase ran to completion; part 2 started at the end of
    /// the last phase.
    AllPhases,
}

/// What one adversary run did: per-phase job ids and the stopping decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryOutcome {
    /// The stopping case.
    pub case: StoppingCase,
    /// Part-2 start time `T`.
    pub t_part2: Time,
    /// Per-released-phase records (long ids and short waves).
    pub phases: Vec<PhaseRecord>,
    /// Stream waves `(time, ids)`.
    pub stream: Vec<(Time, Vec<JobId>)>,
    /// The online algorithm's remaining phase-short work at each midpoint
    /// the adversary inspected (diagnostics for experiment F4).
    pub midpoint_debt: Vec<f64>,
}

/// The jobs released during one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PhaseRecord {
    /// Ids of the `m/2` long jobs.
    pub long_ids: Vec<JobId>,
    /// `(release time, ids)` of each wave of `m` short jobs.
    pub short_waves: Vec<(Time, Vec<JobId>)>,
}

#[derive(Debug, Clone)]
enum PendingEvent {
    Longs { phase: usize },
    Shorts { phase: usize },
    Decision { phase: usize },
    StreamWave,
}

/// The adaptive arrival source implementing the Theorem 2 adversary.
///
/// Feed it to a [`parsched_sim::Engine`] (or use
/// [`PhaseFamily::run_against`]); afterwards, [`PhaseAdversary::into_outcome`]
/// yields the record needed to build the OPT certificate for the concrete
/// instance that materialized.
#[derive(Debug, Clone)]
pub struct PhaseAdversary {
    family: PhaseFamily,
    queue: VecDeque<(Time, PendingEvent)>,
    next_id: u64,
    phases: Vec<PhaseRecord>,
    stream: Vec<(Time, Vec<JobId>)>,
    case: Option<StoppingCase>,
    t_part2: Time,
    midpoint_debt: Vec<f64>,
}

impl PhaseAdversary {
    /// Creates the adversary positioned at phase 0.
    pub fn new(family: PhaseFamily) -> Self {
        let mut a = Self {
            family,
            queue: VecDeque::new(),
            next_id: 0,
            phases: Vec::new(),
            stream: Vec::new(),
            case: None,
            t_part2: 0.0,
            midpoint_debt: Vec::new(),
        };
        a.schedule_phase(0);
        a
    }

    fn schedule_phase(&mut self, i: usize) {
        let s = self.family.phase_start(i);
        self.queue.push_back((s, PendingEvent::Longs { phase: i }));
        for j in 0..self.family.short_waves(i) {
            self.queue
                .push_back((s + j as f64, PendingEvent::Shorts { phase: i }));
        }
        self.queue.push_back((
            s + self.family.phase_len(i) / 2.0,
            PendingEvent::Decision { phase: i },
        ));
        // lint:allow(L007) adversary bookkeeping grows once per phase, not per event; adaptive sources are outside the zero-alloc contract
        self.phases.push(PhaseRecord::default());
        // Events are pushed in increasing time order: waves precede the
        // midpoint because j ≤ ⌊p_i/2⌋ − 1 < p_i/2.
        debug_assert!(self
            .queue
            .iter()
            .zip(self.queue.iter().skip(1))
            .all(|(a, b)| a.0 <= b.0 + 1e-9));
    }

    fn start_part2(&mut self, t: Time, case: StoppingCase) {
        self.case = Some(case);
        self.t_part2 = t;
        for k in 0..self.family.stream_len {
            self.queue
                .push_back((t + k as f64, PendingEvent::StreamWave));
        }
    }

    fn fresh_ids(&mut self, count: usize) -> Vec<JobId> {
        let start = self.next_id;
        self.next_id += count as u64;
        // lint:allow(L007) fresh id batch per wave; adaptive sources are outside the zero-alloc contract
        (start..self.next_id).map(JobId).collect()
    }

    /// The record of this run; call after the simulation finishes.
    pub fn into_outcome(self) -> AdversaryOutcome {
        AdversaryOutcome {
            case: self.case.unwrap_or(StoppingCase::AllPhases),
            t_part2: self.t_part2,
            phases: self.phases,
            stream: self.stream,
            midpoint_debt: self.midpoint_debt,
        }
    }
}

impl ArrivalSource for PhaseAdversary {
    fn next_time(&self) -> Option<Time> {
        self.queue.front().map(|&(t, _)| t)
    }

    fn emit(&mut self, view: &SystemView<'_>) -> Vec<JobSpec> {
        let curve = self.family.curve();
        let m = self.family.m;
        let mut out = Vec::new();
        while let Some(&(t, _)) = self.queue.front() {
            if t > view.now + 1e-9 * view.now.max(1.0) {
                break;
            }
            // lint:allow(L007) front() was checked non-empty by the loop condition just above
            let (t, ev) = self.queue.pop_front().expect("non-empty");
            match ev {
                PendingEvent::Longs { phase } => {
                    let ids = self.fresh_ids(m / 2);
                    let len = self.family.phase_len(phase);
                    for &id in &ids {
                        // lint:allow(L007) emission builds the returned batch; adaptive sources are outside the zero-alloc contract (the audited arm streams via StaticSource)
                        out.push(JobSpec::new(id, t, len, curve.clone()));
                    }
                    // lint:allow(L007) phase indices are assigned from phases.len() at scheduling; in bounds by construction
                    self.phases[phase].long_ids = ids;
                }
                PendingEvent::Shorts { phase } => {
                    let ids = self.fresh_ids(m);
                    for &id in &ids {
                        // lint:allow(L007) emission builds the returned batch; adaptive sources are outside the zero-alloc contract (the audited arm streams via StaticSource)
                        out.push(JobSpec::new(id, t, 1.0, curve.clone()));
                    }
                    // lint:allow(L007) phase indices are in bounds by construction and wave bookkeeping grows per wave; adaptive sources are outside the zero-alloc contract
                    self.phases[phase].short_waves.push((t, ids));
                }
                PendingEvent::Decision { phase } => {
                    // Remaining short work of this phase in the online
                    // algorithm's queue.
                    // lint:allow(L007) phase indices are assigned from phases.len() at scheduling; in bounds by construction
                    let shorts: std::collections::BTreeSet<JobId> = self.phases[phase]
                        .short_waves
                        .iter()
                        .flat_map(|(_, ids)| ids.iter().copied())
                        // lint:allow(L007) midpoint debt set is rebuilt per wave; adaptive sources are outside the zero-alloc contract
                        .collect();
                    let debt = view.remaining_work_where(|j| shorts.contains(&j.id()));
                    // lint:allow(L007) midpoint debt grows per wave; adaptive sources are outside the zero-alloc contract
                    self.midpoint_debt.push(debt);
                    if debt >= self.family.threshold() {
                        self.start_part2(t, StoppingCase::MidPhase { phase });
                    } else if phase + 1 < self.family.num_phases() {
                        self.schedule_phase(phase + 1);
                    } else {
                        let t2 = self.family.phase_start(phase) + self.family.phase_len(phase);
                        self.start_part2(t2, StoppingCase::AllPhases);
                    }
                }
                PendingEvent::StreamWave => {
                    let ids = self.fresh_ids(m);
                    for &id in &ids {
                        // lint:allow(L007) emission builds the returned batch; adaptive sources are outside the zero-alloc contract (the audited arm streams via StaticSource)
                        out.push(JobSpec::new(id, t, 1.0, curve.clone()));
                    }
                    // lint:allow(L007) stream bookkeeping grows per wave; adaptive sources are outside the zero-alloc contract
                    self.stream.push((t, ids));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched::{IntermediateSrpt, ParallelSrpt};
    use parsched_sim::{simulate, PlannedPolicy};

    fn family() -> PhaseFamily {
        PhaseFamily::new(4, 0.5, 64.0).with_stream_len(32)
    }

    #[test]
    fn phase_geometry_matches_paper() {
        let f = family();
        let r = f.reduction();
        assert!((0.0..0.5).contains(&r));
        assert!((f.phase_len(0) - 64.0).abs() < 1e-9);
        assert!((f.phase_len(1) - 64.0 * r).abs() < 1e-9);
        assert_eq!(f.phase_start(0), 0.0);
        assert!((f.phase_start(1) - 64.0).abs() < 1e-9);
        assert!((f.phase_start(2) - 64.0 * (1.0 + r)).abs() < 1e-9);
        assert!(f.num_phases() >= 1);
        assert_eq!(f.short_waves(0), 32);
    }

    #[test]
    fn adversary_emits_well_formed_instances() {
        let f = family();
        let (outcome, record) = f.run_against(&mut IntermediateSrpt::new()).unwrap();
        // All emitted jobs completed and the instance validates.
        assert_eq!(outcome.metrics.num_jobs, outcome.instance.len());
        assert!(!record.stream.is_empty(), "part 2 must always run");
        assert_eq!(record.stream.len(), f.stream_len);
        // Long jobs per released phase = m/2, shorts per wave = m.
        for rec in &record.phases {
            if !rec.long_ids.is_empty() {
                assert_eq!(rec.long_ids.len(), f.m / 2);
            }
            for (_, ids) in &rec.short_waves {
                assert_eq!(ids.len(), f.m);
            }
        }
    }

    #[test]
    fn opt_plan_is_feasible_for_intermediate_srpt_run() {
        let f = family();
        let (outcome, record) = f.run_against(&mut IntermediateSrpt::new()).unwrap();
        let plan = f.opt_plan(&record).unwrap();
        let opt = simulate(
            &outcome.instance,
            &mut PlannedPolicy::named(plan, "standard"),
            f.m as f64,
        )
        .unwrap();
        assert_eq!(opt.metrics.num_jobs, outcome.instance.len());
        // The certificate is what the paper predicts: O(m·P·…) scale, far
        // below a pathological schedule — finite and positive suffices here;
        // the ratio experiments assert the real inequalities.
        assert!(opt.metrics.total_flow.is_finite() && opt.metrics.total_flow > 0.0);
    }

    #[test]
    fn opt_plan_is_feasible_for_parallel_srpt_run() {
        // Parallel-SRPT hoards processors → likely triggers case 1; the
        // certificate must be feasible for that branch too.
        let f = family();
        let (outcome, record) = f.run_against(&mut ParallelSrpt::new()).unwrap();
        let plan = f.opt_plan(&record).unwrap();
        let opt = simulate(
            &outcome.instance,
            &mut PlannedPolicy::named(plan, "standard"),
            f.m as f64,
        )
        .unwrap();
        assert_eq!(opt.metrics.num_jobs, outcome.instance.len());
    }

    #[test]
    fn decision_records_midpoint_debt() {
        let f = family();
        let (_, record) = f.run_against(&mut IntermediateSrpt::new()).unwrap();
        assert!(!record.midpoint_debt.is_empty());
        match record.case {
            StoppingCase::MidPhase { phase } => {
                assert!(record.midpoint_debt[phase] >= f.threshold());
            }
            StoppingCase::AllPhases => {
                assert!(record.midpoint_debt.iter().all(|&d| d < f.threshold()));
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Geometry invariants across the (m, α, P) grid: phase lengths
        /// shrink by exactly r, starts telescope, and an Intermediate-SRPT
        /// run against the adversary completes with a valid instance and
        /// an executable certificate.
        #[test]
        fn family_geometry_invariants(
            m_half in 1usize..5,
            alpha in 0.05f64..0.9,
            p_exp in 3u32..9,
        ) {
            let m = 2 * m_half;
            let p = f64::from(2u32.pow(p_exp));
            let f = PhaseFamily::new(m, alpha, p).with_stream_len(8);
            let r = f.reduction();
            proptest::prop_assert!(r > 0.0 && r < 0.5);
            for i in 0..f.num_phases() {
                proptest::prop_assert!((f.phase_len(i) - p * r.powi(i as i32)).abs() < 1e-6);
                if i > 0 {
                    let telescoped = f.phase_start(i - 1) + f.phase_len(i - 1);
                    proptest::prop_assert!((f.phase_start(i) - telescoped).abs() < 1e-6);
                }
            }
            let (outcome, record) = f
                .run_against(&mut IntermediateSrpt::new())
                .expect("adversary run");
            proptest::prop_assert_eq!(outcome.metrics.num_jobs, outcome.instance.len());
            let plan = f.opt_plan(&record).expect("certificate");
            let opt = simulate(
                &outcome.instance,
                &mut PlannedPolicy::named(plan, "standard"),
                m as f64,
            )
            .expect("certificate executes");
            proptest::prop_assert_eq!(opt.metrics.num_jobs, outcome.instance.len());
        }
    }

    #[test]
    fn well_parameterized_check() {
        // Because L = ½·log_{1/r} P, the last phase retains ≳ √P of length
        // and its short work dominates the logarithmic threshold for every
        // sane parameterization — the guard should hold across the
        // experiment grid.
        for &(m, alpha, p) in &[(4usize, 0.5, 64.0), (8, 0.25, 256.0), (16, 0.9, 1024.0)] {
            let f = PhaseFamily::new(m, alpha, p);
            assert!(f.is_well_parameterized(), "m={m} α={alpha} P={p}");
            // Threshold formula matches theory helpers.
            let expected = m as f64 * theory::log_inv_r(alpha, p);
            assert!((f.threshold() - expected).abs() < 1e-9);
        }
    }
}
