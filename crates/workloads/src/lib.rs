//! Workload generators and the SPAA'14 adversarial instance families.
//!
//! Four kinds of workloads drive the reproduction's experiments:
//!
//! * [`random`] — Poisson-arrival workloads with pluggable size and
//!   parallelizability distributions (the "realistic traffic" used by
//!   experiment T1 and the lemma checkers).
//! * [`batch`] — everything released at time 0, the setting in which EQUI
//!   is 2-competitive (Edmonds; sanity experiment T4).
//! * [`GreedyTrap`] — the Lemma 10 construction on which the natural
//!   greedy hybrid is `Ω(max{P, n^{1/3}})`-competitive, together with the
//!   paper's explicit "alternative algorithm" schedule that certifies an
//!   upper bound on OPT (experiment F3).
//! * [`PhaseFamily`] / [`PhaseAdversary`] — the Theorem 2 **adaptive**
//!   lower-bound construction forcing *every* online algorithm to
//!   `Ω(log P)`, together with the paper's "standard schedule" OPT
//!   certificates for both adversary cases (experiments F1 and F4).
//! * [`mix`] — overload/underload oscillators that exercise
//!   Intermediate-SRPT's regime switch (experiment F5).
//! * [`streaming`] — lazy [`parsched_sim::ArrivalSource`] versions of the
//!   generators above ([`PoissonSource`], [`TrapStreamSource`],
//!   [`PhaseStreamSource`]) for the engine's memory-bounded streaming path:
//!   same job sequences, cursor-sized state.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
mod greedy_trap;
pub mod mix;
mod phases;
pub mod random;
pub mod streaming;

pub use greedy_trap::GreedyTrap;
pub use phases::{AdversaryOutcome, PhaseAdversary, PhaseFamily, StoppingCase};
pub use streaming::{PhaseStreamSource, PoissonSource, TrapStreamSource};
