//! Overload/underload oscillators.
//!
//! Intermediate-SRPT is defined by its regime switch: Sequential-SRPT when
//! `|A(t)| ≥ m`, EQUI when `|A(t)| < m`. These generators produce workloads
//! that deliberately cross that boundary repeatedly (experiment F5), and a
//! heterogeneous-α "datacenter" mix used by the examples.

use parsched_sim::{Instance, JobId, JobSpec, SimError};
use parsched_speedup::Curve;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Periodic bursts: every `period` time units, release `burst` jobs of the
/// given size, then silence. With `burst > m` the system goes overloaded at
/// each burst and drains into underload before the next.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SawtoothWorkload {
    /// Jobs per burst.
    pub burst: usize,
    /// Number of bursts.
    pub bursts: usize,
    /// Time between burst starts.
    pub period: f64,
    /// Job size.
    pub size: f64,
    /// Parallelizability exponent for all jobs.
    pub alpha: f64,
}

impl SawtoothWorkload {
    /// A sawtooth that drives `m` processors across the overload boundary:
    /// bursts of `2m` unit-size jobs spaced far enough apart to drain.
    pub fn crossing(m: usize, bursts: usize, alpha: f64) -> Self {
        Self {
            burst: 2 * m,
            bursts,
            // 2m unit jobs drain in ≥ 2 time units on m machines; period 4
            // guarantees a quiet tail each cycle.
            period: 4.0,
            size: 1.0,
            alpha,
        }
    }

    /// Generates the instance.
    pub fn generate(&self) -> Result<Instance, SimError> {
        let curve = Curve::power(self.alpha);
        let mut jobs = Vec::with_capacity(self.burst * self.bursts);
        let mut id = 0u64;
        for b in 0..self.bursts {
            let t = b as f64 * self.period;
            for _ in 0..self.burst {
                jobs.push(JobSpec::new(JobId(id), t, self.size, curve.clone()));
                id += 1;
            }
        }
        Instance::new(jobs)
    }
}

/// A heterogeneous-`α` mix modelled after the paper's motivation: a
/// many-core machine shared by mostly-sequential services, moderately
/// parallel analytics, and embarrassingly parallel batch jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatacenterMix {
    /// Number of jobs.
    pub n: usize,
    /// Arrival rate (jobs per unit time).
    pub rate: f64,
    /// Largest job size (`P`).
    pub p: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatacenterMix {
    /// Generates the instance: 50% α=0.2 "services" with small sizes,
    /// 30% α=0.6 "analytics" with mid sizes, 20% α=0.95 "batch" with sizes
    /// up to `P`.
    pub fn generate(&self) -> Result<Instance, SimError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut jobs = Vec::with_capacity(self.n);
        let mut t = 0.0;
        for i in 0..self.n {
            let u: f64 = rng.gen::<f64>().max(1e-300);
            t += -u.ln() / self.rate;
            let class: f64 = rng.gen();
            let (alpha, lo, hi) = if class < 0.5 {
                (0.2, 1.0, (self.p / 8.0).max(1.0))
            } else if class < 0.8 {
                (0.6, 1.0, (self.p / 2.0).max(1.0))
            } else {
                (0.95, 1.0, self.p)
            };
            let size = lo + rng.gen::<f64>() * (hi - lo).max(0.0);
            jobs.push(JobSpec::new(JobId(i as u64), t, size, Curve::power(alpha)));
        }
        Instance::new(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched::IntermediateSrpt;
    use parsched_sim::{simulate_with_observer, AliveTrace};

    #[test]
    fn sawtooth_counts_and_times() {
        let w = SawtoothWorkload::crossing(4, 3, 0.5);
        let inst = w.generate().unwrap();
        assert_eq!(inst.len(), 24);
        assert_eq!(inst.jobs()[0].release, 0.0);
        assert_eq!(inst.last_release(), 8.0);
    }

    #[test]
    fn sawtooth_actually_crosses_the_regime_boundary() {
        let m = 4;
        let w = SawtoothWorkload::crossing(m, 3, 0.5);
        let inst = w.generate().unwrap();
        let mut trace = AliveTrace::new();
        simulate_with_observer(&inst, &mut IntermediateSrpt::new(), m as f64, &mut trace).unwrap();
        let frac = trace.overloaded_fraction(m);
        assert!(frac > 0.0 && frac < 1.0, "never crossed: {frac}");
        assert!(trace.peak() >= 2 * m);
    }

    #[test]
    fn datacenter_mix_has_three_alpha_classes() {
        let w = DatacenterMix {
            n: 300,
            rate: 5.0,
            p: 64.0,
            seed: 11,
        };
        let inst = w.generate().unwrap();
        let mut alphas: Vec<f64> = inst.jobs().iter().filter_map(|j| j.curve.alpha()).collect();
        alphas.sort_by(f64::total_cmp);
        alphas.dedup();
        assert_eq!(alphas, vec![0.2, 0.6, 0.95]);
        assert!(inst.p_max() <= 64.0);
    }
}
