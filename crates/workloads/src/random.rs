//! Random workloads: Poisson arrivals with pluggable size and
//! parallelizability distributions.
//!
//! All generators are deterministic functions of an explicit `u64` seed
//! (via [`rand::rngs::StdRng`]), so every experiment is replayable from its
//! recorded parameters.

use parsched_sim::{Instance, JobId, JobSpec, SimError};
use parsched_speedup::Curve;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Job-size distribution over `[1, P]` (the paper's normalization).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every job has the same size.
    Fixed(f64),
    /// `exp(U[0, ln P])` — log-uniform over `[1, P]`; every size class is
    /// equally likely, the natural "hard" distribution for class-based
    /// algorithms.
    LogUniform {
        /// Largest size `P ≥ 1`.
        p: f64,
    },
    /// Bounded Pareto on `[1, P]` with the given tail index (heavy-tailed
    /// workloads, the classic motivation for SRPT-style policies).
    Pareto {
        /// Largest size `P ≥ 1`.
        p: f64,
        /// Tail index `a > 0` (smaller = heavier tail).
        shape: f64,
    },
    /// `small` with probability `1 − prob_large`, else `large`.
    Bimodal {
        /// The common small size.
        small: f64,
        /// The rare large size.
        large: f64,
        /// Probability of drawing `large`.
        prob_large: f64,
    },
}

impl SizeDist {
    /// Draws one size.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            SizeDist::Fixed(p) => p,
            SizeDist::LogUniform { p } => {
                let u: f64 = rng.gen();
                (u * p.ln()).exp()
            }
            SizeDist::Pareto { p, shape } => {
                // Inverse-CDF of a bounded Pareto on [1, p].
                let u: f64 = rng.gen();
                let hp = 1.0 - p.powf(-shape);
                (1.0 - u * hp).powf(-1.0 / shape).min(p)
            }
            SizeDist::Bimodal {
                small,
                large,
                prob_large,
            } => {
                if rng.gen::<f64>() < prob_large {
                    large
                } else {
                    small
                }
            }
        }
    }

    /// The distribution mean (analytic; used to convert a target load into
    /// an arrival rate).
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Fixed(p) => p,
            SizeDist::LogUniform { p } => {
                if p <= 1.0 {
                    1.0
                } else {
                    (p - 1.0) / p.ln()
                }
            }
            SizeDist::Pareto { p, shape } => {
                // E[X] for bounded Pareto on [1, p], shape a ≠ 1.
                let a = shape;
                if (a - 1.0).abs() < 1e-12 {
                    p.ln() / (1.0 - 1.0 / p)
                } else {
                    (a / (a - 1.0)) * (1.0 - p.powf(1.0 - a)) / (1.0 - p.powf(-a))
                }
            }
            SizeDist::Bimodal {
                small,
                large,
                prob_large,
            } => small * (1.0 - prob_large) + large * prob_large,
        }
    }
}

/// Parallelizability distribution over the exponent `α`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlphaDist {
    /// All jobs share one α.
    Fixed(f64),
    /// α uniform on `[lo, hi] ⊆ [0, 1]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A weighted mix of exponents (weights need not be normalized).
    Choice(Vec<(f64, f64)>),
}

impl AlphaDist {
    /// Draws one α.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match self {
            AlphaDist::Fixed(a) => *a,
            AlphaDist::Uniform { lo, hi } => rng.gen_range(*lo..=*hi),
            AlphaDist::Choice(items) => {
                let total: f64 = items.iter().map(|&(_, w)| w).sum();
                let mut x = rng.gen::<f64>() * total;
                for &(a, w) in items {
                    if x < w {
                        return a;
                    }
                    x -= w;
                }
                items.last().map(|&(a, _)| a).unwrap_or(0.5)
            }
        }
    }

    /// Largest α this distribution can produce (the paper's
    /// `α = max_j α_j`, which controls the Theorem 1 constant).
    pub fn max_alpha(&self) -> f64 {
        match self {
            AlphaDist::Fixed(a) => *a,
            AlphaDist::Uniform { hi, .. } => *hi,
            AlphaDist::Choice(items) => items.iter().map(|&(a, _)| a).fold(0.0, f64::max),
        }
    }
}

/// A Poisson-arrival workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonWorkload {
    /// Number of jobs.
    pub n: usize,
    /// Arrival rate λ (jobs per unit time).
    pub rate: f64,
    /// Size distribution.
    pub sizes: SizeDist,
    /// Parallelizability distribution.
    pub alphas: AlphaDist,
    /// RNG seed (recorded with every experiment row).
    pub seed: u64,
}

impl PoissonWorkload {
    /// Arrival rate that produces offered load `ρ` on `m` processors:
    /// `λ = ρ · m / E[size]`.
    ///
    /// "Load" here is work-volume load: when overloaded the system drains
    /// at most `m` volume per unit time (since `Γ(x) ≤ x`), so `ρ = 1` is
    /// the saturation point.
    pub fn rate_for_load(load: f64, m: f64, sizes: &SizeDist) -> f64 {
        load * m / sizes.mean()
    }

    /// Generates the instance.
    pub fn generate(&self) -> Result<Instance, SimError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = 0.0;
        let mut jobs = Vec::with_capacity(self.n);
        for i in 0..self.n {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = rng.gen::<f64>().max(1e-300);
            t += -u.ln() / self.rate;
            let size = self.sizes.sample(&mut rng).max(1e-9);
            let alpha = self.alphas.sample(&mut rng).clamp(0.0, 1.0);
            jobs.push(JobSpec::new(JobId(i as u64), t, size, Curve::power(alpha)));
        }
        Instance::new(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn size_dists_stay_in_range() {
        let mut r = rng();
        let dists = [
            SizeDist::Fixed(3.0),
            SizeDist::LogUniform { p: 64.0 },
            SizeDist::Pareto {
                p: 64.0,
                shape: 1.1,
            },
            SizeDist::Bimodal {
                small: 1.0,
                large: 64.0,
                prob_large: 0.1,
            },
        ];
        for d in &dists {
            for _ in 0..2000 {
                let s = d.sample(&mut r);
                assert!(
                    (1.0..=64.0).contains(&s) || matches!(d, SizeDist::Fixed(_)),
                    "{d:?}: {s}"
                );
            }
        }
    }

    #[test]
    fn empirical_means_match_analytic() {
        let mut r = rng();
        let dists = [
            SizeDist::LogUniform { p: 32.0 },
            SizeDist::Pareto {
                p: 32.0,
                shape: 1.5,
            },
            SizeDist::Bimodal {
                small: 1.0,
                large: 10.0,
                prob_large: 0.3,
            },
        ];
        for d in &dists {
            let n = 200_000;
            let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
            let emp = sum / f64::from(n);
            let ana = d.mean();
            assert!(
                (emp - ana).abs() / ana < 0.02,
                "{d:?}: empirical {emp} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn alpha_dists_sample_in_range() {
        let mut r = rng();
        let d = AlphaDist::Uniform { lo: 0.2, hi: 0.8 };
        for _ in 0..1000 {
            let a = d.sample(&mut r);
            assert!((0.2..=0.8).contains(&a));
        }
        assert_eq!(d.max_alpha(), 0.8);
        let c = AlphaDist::Choice(vec![(0.1, 1.0), (0.9, 3.0)]);
        let mut hit_high = 0;
        for _ in 0..1000 {
            if c.sample(&mut r) == 0.9 {
                hit_high += 1;
            }
        }
        // 75% expected.
        assert!((600..900).contains(&hit_high), "{hit_high}");
        assert_eq!(c.max_alpha(), 0.9);
    }

    #[test]
    fn poisson_workload_is_deterministic_per_seed() {
        let w = PoissonWorkload {
            n: 100,
            rate: 2.0,
            sizes: SizeDist::LogUniform { p: 16.0 },
            alphas: AlphaDist::Fixed(0.5),
            seed: 7,
        };
        let a = w.generate().unwrap();
        let b = w.generate().unwrap();
        assert_eq!(a, b);
        let c = PoissonWorkload { seed: 8, ..w }.generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_rate_is_respected() {
        let w = PoissonWorkload {
            n: 50_000,
            rate: 4.0,
            sizes: SizeDist::Fixed(1.0),
            alphas: AlphaDist::Fixed(0.5),
            seed: 3,
        };
        let inst = w.generate().unwrap();
        let horizon = inst.last_release();
        let emp_rate = inst.len() as f64 / horizon;
        assert!((emp_rate - 4.0).abs() < 0.1, "{emp_rate}");
    }

    #[test]
    fn rate_for_load_formula() {
        let sizes = SizeDist::Fixed(2.0);
        // ρ = 0.5 on m = 8 with mean size 2 → λ = 2.
        assert!((PoissonWorkload::rate_for_load(0.5, 8.0, &sizes) - 2.0).abs() < 1e-12);
    }
}
