//! Generator-backed [`ArrivalSource`]s for the streaming engine path.
//!
//! The eager generators in this crate ([`PoissonWorkload::generate`],
//! [`GreedyTrap::instance`], the [`PhaseFamily`] layout) materialize a full
//! [`Instance`] — `O(n)` memory before the simulation even starts. The
//! sources here produce the *same job sequences* lazily, holding only a
//! cursor and (for Poisson) the RNG state, so a streaming run's memory is
//! bounded by the alive set no matter how long the stream
//! (see `docs/PERF.md`, "The streaming path").
//!
//! Each source is a drop-in [`ArrivalSource`]: feeding it to
//! [`parsched_sim::simulate_streaming`] yields metrics **bit-identical** to
//! the in-memory run over the eager instance, because the emitted
//! [`JobSpec`] sequence is identical element-for-element (the unit tests
//! pin this by draining each source and comparing against its eager
//! counterpart).

use parsched_sim::{ArrivalSource, Instance, JobId, JobSpec, SimError, SystemView, Time};
use parsched_speedup::Curve;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::random::PoissonWorkload;
use crate::GreedyTrap;
use crate::PhaseFamily;

/// The engine's shared admission window ([`parsched_sim::arrival_tolerance`]):
/// emit exactly the set of jobs the engine would admit at `now`.
fn release_tol(now: Time) -> f64 {
    parsched_sim::arrival_tolerance(now)
}

/// Lazy equivalent of [`PoissonWorkload::generate`]: the same seed produces
/// the same job sequence, one pre-generated job at a time.
///
/// The per-job RNG call order (inter-arrival draw, then size, then α) is
/// replicated exactly, so `PoissonSource::new(w)` drained as a stream equals
/// `w.generate()` element-for-element — which is what makes streaming runs
/// comparable against in-memory runs of the eager instance.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    workload: PoissonWorkload,
    rng: StdRng,
    t: f64,
    emitted: usize,
    next: Option<JobSpec>,
}

impl PoissonSource {
    /// A lazy stream over `workload`'s job sequence.
    pub fn new(workload: PoissonWorkload) -> Self {
        let rng = StdRng::seed_from_u64(workload.seed);
        let mut src = Self {
            workload,
            rng,
            t: 0.0,
            emitted: 0,
            next: None,
        };
        src.next = src.generate_next();
        src
    }

    /// Generates the next job with exactly the RNG sequence of
    /// [`PoissonWorkload::generate`].
    fn generate_next(&mut self) -> Option<JobSpec> {
        if self.emitted >= self.workload.n {
            return None;
        }
        let u: f64 = self.rng.gen::<f64>().max(1e-300);
        self.t += -u.ln() / self.workload.rate;
        let size = self.workload.sizes.sample(&mut self.rng).max(1e-9);
        let alpha = self.workload.alphas.sample(&mut self.rng).clamp(0.0, 1.0);
        let spec = JobSpec::new(
            JobId(self.emitted as u64),
            self.t,
            size,
            Curve::power(alpha),
        );
        self.emitted += 1;
        Some(spec)
    }
}

impl ArrivalSource for PoissonSource {
    fn next_time(&self) -> Option<Time> {
        self.next.as_ref().map(|j| j.release)
    }

    fn emit(&mut self, view: &SystemView<'_>) -> Vec<JobSpec> {
        let mut out = Vec::new();
        self.emit_into(view, &mut out);
        out
    }

    fn emit_into(&mut self, view: &SystemView<'_>, out: &mut Vec<JobSpec>) {
        let tol = release_tol(view.now);
        while let Some(j) = &self.next {
            if j.release <= view.now + tol {
                // lint:allow(L007) next.is_some() was checked by the branch guard just above
                out.push(self.next.take().expect("checked above"));
                self.next = self.generate_next();
            } else {
                break;
            }
        }
    }

    fn needs_system_view(&self) -> bool {
        false
    }
}

/// Lazy equivalent of [`GreedyTrap::instance`]: the Lemma 10 layout emitted
/// job-by-job from a cursor, never materialized.
///
/// The stream portion is parameterized through
/// [`GreedyTrap::with_stream_duration`], so multi-million-job traps cost
/// only the alive set.
#[derive(Debug, Clone)]
pub struct TrapStreamSource {
    trap: GreedyTrap,
    cursor: usize,
}

impl TrapStreamSource {
    /// A lazy stream over `trap`'s instance layout.
    pub fn new(trap: GreedyTrap) -> Self {
        Self { trap, cursor: 0 }
    }

    /// Total number of jobs this source will emit.
    pub fn len(&self) -> usize {
        self.trap.num_long() + self.trap.num_phase1_units() + self.trap.num_stream_units()
    }

    /// Whether the source emits nothing (never true for a valid trap).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `idx`-th job of the layout — longs at 0, then phase-1 units
    /// every `1/K`, then the stream from `m + 1` (identical order and ids
    /// to [`GreedyTrap::instance`]).
    fn job_at(&self, idx: usize) -> Option<JobSpec> {
        if idx >= self.len() {
            return None;
        }
        let m = self.trap.m as f64;
        let delta = 1.0 / self.trap.k() as f64;
        let (release, size) = if idx < self.trap.num_long() {
            (0.0, m)
        } else if idx < self.trap.num_long() + self.trap.num_phase1_units() {
            let j = idx - self.trap.num_long();
            (j as f64 * delta, 1.0)
        } else {
            let j = idx - self.trap.num_long() - self.trap.num_phase1_units();
            (m + 1.0 + j as f64 * delta, 1.0)
        };
        Some(JobSpec::new(
            JobId(idx as u64),
            release,
            size,
            Curve::power(self.trap.alpha),
        ))
    }
}

impl ArrivalSource for TrapStreamSource {
    fn next_time(&self) -> Option<Time> {
        self.job_at(self.cursor).map(|j| j.release)
    }

    fn emit(&mut self, view: &SystemView<'_>) -> Vec<JobSpec> {
        let mut out = Vec::new();
        self.emit_into(view, &mut out);
        out
    }

    fn emit_into(&mut self, view: &SystemView<'_>, out: &mut Vec<JobSpec>) {
        let tol = release_tol(view.now);
        while let Some(j) = self.job_at(self.cursor) {
            if j.release <= view.now + tol {
                out.push(j);
                self.cursor += 1;
            } else {
                break;
            }
        }
    }

    fn needs_system_view(&self) -> bool {
        false
    }
}

/// Where a [`PhaseStreamSource`] cursor currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseStage {
    /// Emitting wave `wave` of phase `phase` (wave 0 also carries the
    /// phase's long jobs).
    Phase { phase: usize, wave: usize },
    /// Emitting part-2 stream wave `wave`.
    Stream { wave: usize },
    /// Exhausted.
    Done,
}

/// The **non-adaptive** phase-family layout as a lazy stream: every phase
/// plays to completion (the Theorem 2 adversary's case-2 branch), then the
/// part-2 unit-job stream runs for [`PhaseFamily::stream_len`] waves.
///
/// Unlike [`PhaseAdversary`](crate::PhaseAdversary) this source never
/// inspects the online algorithm, so it works on the engine's incremental
/// path without materializing the alive view and its memory is a cursor —
/// the right workload for multi-million-job streaming benchmarks with the
/// phase structure (set `stream_len` large via
/// [`PhaseFamily::with_stream_len`]).
#[derive(Debug, Clone)]
pub struct PhaseStreamSource {
    family: PhaseFamily,
    stage: PhaseStage,
    next_id: u64,
}

impl PhaseStreamSource {
    /// A lazy all-phases stream over `family`'s layout.
    pub fn new(family: PhaseFamily) -> Self {
        Self {
            family,
            stage: PhaseStage::Phase { phase: 0, wave: 0 },
            next_id: 0,
        }
    }

    /// Number of wave slots in phase `i` — at least 1 so the long jobs are
    /// emitted even when the phase is too short for any short wave.
    fn waves_in_phase(&self, i: usize) -> usize {
        self.family.short_waves(i).max(1)
    }

    /// Part-2 start: the end of the last phase.
    fn t_part2(&self) -> Time {
        let last = self.family.num_phases() - 1;
        self.family.phase_start(last) + self.family.phase_len(last)
    }

    /// Advances the cursor past the current wave slot.
    fn advance(&mut self) {
        self.stage = match self.stage {
            PhaseStage::Phase { phase, wave } => {
                if wave + 1 < self.waves_in_phase(phase) {
                    PhaseStage::Phase {
                        phase,
                        wave: wave + 1,
                    }
                } else if phase + 1 < self.family.num_phases() {
                    PhaseStage::Phase {
                        phase: phase + 1,
                        wave: 0,
                    }
                } else {
                    PhaseStage::Stream { wave: 0 }
                }
            }
            PhaseStage::Stream { wave } => {
                if wave + 1 < self.family.stream_len {
                    PhaseStage::Stream { wave: wave + 1 }
                } else {
                    PhaseStage::Done
                }
            }
            PhaseStage::Done => PhaseStage::Done,
        };
    }

    fn fresh_id(&mut self) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Emits the jobs of the current wave slot in the family's canonical
    /// order: long jobs first (wave 0 only), then the `m` unit shorts.
    fn emit_slot(&mut self, out: &mut Vec<JobSpec>) {
        let curve = self.family.curve();
        let m = self.family.m;
        match self.stage {
            PhaseStage::Phase { phase, wave } => {
                let t = self.family.phase_start(phase) + wave as f64;
                if wave == 0 {
                    let len = self.family.phase_len(phase);
                    for _ in 0..m / 2 {
                        let id = self.fresh_id();
                        out.push(JobSpec::new(id, t, len, curve.clone()));
                    }
                }
                if self.family.short_waves(phase) > 0 {
                    for _ in 0..m {
                        let id = self.fresh_id();
                        out.push(JobSpec::new(id, t, 1.0, curve.clone()));
                    }
                }
            }
            PhaseStage::Stream { wave } => {
                let t = self.t_part2() + wave as f64;
                for _ in 0..m {
                    let id = self.fresh_id();
                    out.push(JobSpec::new(id, t, 1.0, curve.clone()));
                }
            }
            PhaseStage::Done => {}
        }
        self.advance();
    }

    /// Materializes the full layout eagerly — the in-memory counterpart the
    /// differential tests compare streaming runs against. `O(n)` memory, so
    /// only call it at test/sweep scales.
    pub fn instance(family: PhaseFamily) -> Result<Instance, SimError> {
        let mut src = Self::new(family);
        let mut jobs = Vec::new();
        while src.stage != PhaseStage::Done {
            src.emit_slot(&mut jobs);
        }
        Instance::new(jobs)
    }
}

impl ArrivalSource for PhaseStreamSource {
    fn next_time(&self) -> Option<Time> {
        match self.stage {
            PhaseStage::Phase { phase, wave } => Some(self.family.phase_start(phase) + wave as f64),
            PhaseStage::Stream { wave } => Some(self.t_part2() + wave as f64),
            PhaseStage::Done => None,
        }
    }

    fn emit(&mut self, view: &SystemView<'_>) -> Vec<JobSpec> {
        let mut out = Vec::new();
        self.emit_into(view, &mut out);
        out
    }

    fn emit_into(&mut self, view: &SystemView<'_>, out: &mut Vec<JobSpec>) {
        let tol = release_tol(view.now);
        while let Some(t) = self.next_time() {
            if t <= view.now + tol {
                self.emit_slot(out);
            } else {
                break;
            }
        }
    }

    fn needs_system_view(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{AlphaDist, SizeDist};
    use parsched::IntermediateSrpt;
    use parsched_sim::{simulate, simulate_streaming};

    /// Drains a source eagerly, stepping time to each announced arrival.
    fn drain(src: &mut dyn ArrivalSource) -> Vec<JobSpec> {
        let mut out = Vec::new();
        while let Some(t) = src.next_time() {
            let view = SystemView {
                now: t,
                m: 1.0,
                alive: &[],
            };
            src.emit_into(&view, &mut out);
        }
        out
    }

    fn workload() -> PoissonWorkload {
        PoissonWorkload {
            n: 500,
            rate: 2.0,
            sizes: SizeDist::LogUniform { p: 16.0 },
            alphas: AlphaDist::Uniform { lo: 0.2, hi: 0.9 },
            seed: 7,
        }
    }

    #[test]
    fn poisson_source_replays_generate_exactly() {
        let w = workload();
        let eager = w.generate().unwrap();
        let lazy = drain(&mut PoissonSource::new(w));
        assert_eq!(eager.jobs(), lazy.as_slice());
    }

    #[test]
    fn trap_source_replays_instance_exactly() {
        let trap = GreedyTrap::new(8, 0.5).with_stream_duration(16.0);
        let eager = trap.instance().unwrap();
        let lazy = drain(&mut TrapStreamSource::new(trap));
        assert_eq!(eager.jobs(), lazy.as_slice());
    }

    #[test]
    fn phase_source_replays_its_eager_instance_exactly() {
        let fam = PhaseFamily::new(4, 0.5, 64.0).with_stream_len(8);
        let eager = PhaseStreamSource::instance(fam).unwrap();
        let lazy = drain(&mut PhaseStreamSource::new(fam));
        assert_eq!(eager.jobs(), lazy.as_slice());
        // Every phase contributes m/2 longs plus m per wave, then the
        // stream contributes m per wave.
        let expected: usize = (0..fam.num_phases())
            .map(|i| fam.m / 2 + fam.m * fam.short_waves(i))
            .sum::<usize>()
            + fam.m * fam.stream_len;
        assert_eq!(eager.len(), expected);
    }

    #[test]
    fn streaming_run_over_lazy_source_matches_in_memory_run() {
        let w = workload();
        let eager = w.generate().unwrap();
        let mem = simulate(&eager, &mut IntermediateSrpt::new(), 4.0).unwrap();
        let mut src = PoissonSource::new(w);
        let st = simulate_streaming(&mut src, &mut IntermediateSrpt::new(), 4.0).unwrap();
        assert_eq!(mem.metrics, st.metrics);
        assert_eq!(st.admitted, eager.len());
        assert!(st.peak_alive <= eager.len());
    }

    #[test]
    fn sources_announce_nondecreasing_times() {
        let trap = GreedyTrap::new(4, 0.5).with_stream_duration(8.0);
        for src in [
            &mut TrapStreamSource::new(trap) as &mut dyn ArrivalSource,
            &mut PoissonSource::new(workload()),
            &mut PhaseStreamSource::new(PhaseFamily::new(4, 0.5, 64.0).with_stream_len(4)),
        ] {
            let mut last = f64::NEG_INFINITY;
            while let Some(t) = src.next_time() {
                assert!(t >= last, "time went backwards: {last} → {t}");
                last = t;
                let view = SystemView {
                    now: t,
                    m: 1.0,
                    alive: &[],
                };
                let batch = src.emit(&view);
                assert!(!batch.is_empty(), "announced {t} but emitted nothing");
                for j in &batch {
                    assert!((j.release - t).abs() <= 1e-9 * t.abs().max(1.0));
                }
            }
        }
    }
}
