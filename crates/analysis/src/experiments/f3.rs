//! F3 — the greedy hybrid's `Ω(P)` blow-up on the Lemma 10 trap family.
//!
//! Sweep `m` (note `P = m` on this family). For each trap instance we run
//! the natural greedy hybrid and Intermediate-SRPT, and measure both
//! against the OPT bracket whose witnesses include the paper's explicit
//! *alternative algorithm* schedule. Lemma 10 predicts greedy's rigorous
//! `ratio ≥` column grows roughly linearly in `m` while
//! Intermediate-SRPT's stays `O(log P)` — the crossover motivating the
//! whole paper.

use parsched::{GreedyHybrid, IntermediateSrpt};
use parsched_sim::simulate;
use parsched_workloads::GreedyTrap;

use super::util::bracket_cheap;
use super::{ExpOptions, ExpResult};
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const ALPHA: f64 = 0.5;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let ms: Vec<usize> = if opts.quick {
        vec![4, 9]
    } else {
        vec![4, 9, 16, 36, 64]
    };
    let rows = parallel_map(ms, |m| {
        let trap = GreedyTrap::new(m, ALPHA);
        let inst = trap.instance().expect("trap instance");
        let plan = trap.alternative_plan().expect("alternative schedule");
        let est =
            bracket_cheap(&inst, m as f64, &[("alternative".to_string(), plan)]).expect("bracket");
        let greedy = simulate(&inst, &mut GreedyHybrid::new(), m as f64)
            .expect("greedy run")
            .metrics
            .total_flow;
        let isrpt = simulate(&inst, &mut IntermediateSrpt::new(), m as f64)
            .expect("isrpt run")
            .metrics
            .total_flow;
        (
            m,
            inst.len(),
            greedy,
            isrpt,
            est,
            trap.predicted_ratio_lower(),
        )
    });

    let mut table = Table::new(
        "F3: greedy trap (Lemma 10), α=0.5, X=m², P=m",
        &[
            "m (=P)",
            "n",
            "greedy ratio ≥",
            "ISRPT ratio ≥",
            "predicted Ω",
            "OPT witness",
        ],
    );
    let mut greedy_ratios = Vec::new();
    let mut isrpt_ratios = Vec::new();
    for &(m, n, greedy, isrpt, ref est, predicted) in &rows {
        let g = greedy / est.upper;
        let i = isrpt / est.upper;
        greedy_ratios.push((m, g));
        isrpt_ratios.push((m, i));
        table.push_row(vec![
            m.to_string(),
            n.to_string(),
            fnum(g),
            fnum(i),
            fnum(predicted),
            est.upper_witness.clone(),
        ]);
    }

    // Shape: greedy's ratio grows ~linearly with m (at least 2× from the
    // smallest to the largest m, and super-logarithmically), while
    // Intermediate-SRPT stays within a modest factor of log P.
    let (m0, g0) = greedy_ratios[0];
    let (m1, g1) = greedy_ratios[greedy_ratios.len() - 1];
    let greedy_blows_up = g1 > g0 * ((m1 as f64 / m0 as f64).sqrt()).max(2.0_f64.min(g0 * 10.0));
    let isrpt_stays_log = isrpt_ratios
        .iter()
        .all(|&(m, r)| r <= 6.0 * (m as f64).log2().max(1.0));
    let greedy_beats_isrpt_badly = g1 > 3.0 * isrpt_ratios.last().expect("rows").1;

    ExpResult {
        id: "f3",
        title: "Greedy hybrid is Ω(P)-competitive on the trap family (Lemma 10)",
        tables: vec![table],
        notes: vec![
            "ratio ≥ is rigorous: flow / best feasible witness (incl. the paper's alternative schedule)".to_string(),
            "predicted Ω = (m − m^{1−ε})·X / (m² + X), the paper's dominant terms".to_string(),
        ],
        pass: greedy_blows_up && isrpt_stays_log && greedy_beats_isrpt_badly,
    }
}
