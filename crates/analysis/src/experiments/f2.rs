//! F2 — the α-dependence of Theorem 1, and the jump at α = 1.
//!
//! Two sub-experiments on a fixed batch of identical jobs plus a
//! heavy-tail Poisson tail:
//!
//! * For `α < 1`, run Intermediate-SRPT and Parallel-SRPT and report the
//!   rigorous ratio bracket against the OPT bracket. Theorem 1 + Theorem 2
//!   predict: Intermediate-SRPT's measured `ratio ≤` column stays modest
//!   for all α, while Parallel-SRPT degrades as α drops (hoarding `m`
//!   processors wastes `m − m^α` of them).
//! * At `α = 1` (fully parallelizable), Parallel-SRPT is *optimal*
//!   (ratio exactly 1 vs the fluid lower bound, which is tight there) —
//!   the discontinuity the paper highlights: the optimal competitive
//!   ratio jumps from 1 to Θ(log P) the instant α < 1.

use parsched::{IntermediateSrpt, ParallelSrpt, PolicyKind};
use parsched_opt::{bounds, OptEstimate};
use parsched_sim::simulate;
use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};

use super::{ExpOptions, ExpResult};
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const M: f64 = 8.0;
const P: f64 = 64.0;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let alphas: Vec<f64> = if opts.quick {
        vec![0.25, 0.75, 1.0]
    } else {
        vec![0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
    };
    let n = if opts.quick { 120 } else { 400 };
    let seed = opts.seed;

    let rows = parallel_map(alphas.clone(), |alpha| {
        let sizes = SizeDist::LogUniform { p: P };
        let w = PoissonWorkload {
            n,
            rate: PoissonWorkload::rate_for_load(0.9, M, &sizes),
            sizes,
            alphas: AlphaDist::Fixed(alpha),
            seed,
        };
        let inst = w.generate().expect("workload");
        let est =
            OptEstimate::bracket_with(&inst, M, &PolicyKind::all_standard(), &[]).expect("bracket");
        let isrpt = simulate(&inst, &mut IntermediateSrpt::new(), M)
            .expect("isrpt")
            .metrics
            .total_flow;
        let psrpt = simulate(&inst, &mut ParallelSrpt::new(), M)
            .expect("psrpt")
            .metrics
            .total_flow;
        (alpha, isrpt, psrpt, est)
    });

    let mut table = Table::new(
        "F2: ratio brackets vs α (m=8, P=64, load 0.9, log-uniform sizes)",
        &[
            "α",
            "4^{1/(1-α)}",
            "ISRPT ratio ≤",
            "PSRPT ratio ≤",
            "PSRPT/ISRPT flow",
        ],
    );
    let mut psrpt_over_isrpt = Vec::new();
    for &(alpha, isrpt, psrpt, ref est) in &rows {
        let four = parsched::theory::four_power(alpha);
        psrpt_over_isrpt.push((alpha, psrpt / isrpt));
        table.push_row(vec![
            fnum(alpha),
            if four.is_finite() {
                fnum(four)
            } else {
                "∞".into()
            },
            fnum(isrpt / est.lower),
            fnum(psrpt / est.lower),
            fnum(psrpt / isrpt),
        ]);
    }

    // At α = 1: Parallel-SRPT equals the fluid lower bound exactly.
    // α = 1 is a literal grid point of ALPHAS, not a computed value.
    let alpha1 = rows.iter().find(|r| parsched_speedup::exact_eq(r.0, 1.0));
    let psrpt_optimal_at_one = alpha1.is_some_and(|&(_, _, psrpt, _)| {
        let sizes = SizeDist::LogUniform { p: P };
        let w = PoissonWorkload {
            n,
            rate: PoissonWorkload::rate_for_load(0.9, M, &sizes),
            sizes,
            alphas: AlphaDist::Fixed(1.0),
            seed,
        };
        let inst = w.generate().expect("workload");
        let fluid = bounds::srpt_fluid_lb(&inst, M);
        (psrpt - fluid).abs() / fluid < 1e-4
    });

    // Shape: PSRPT/ISRPT worsens as α decreases below 1, and at α = 1
    // PSRPT is optimal.
    let degraded_low_alpha = {
        let lo = psrpt_over_isrpt
            .iter()
            .filter(|&&(a, _)| a <= 0.5)
            .map(|&(_, r)| r)
            .fold(0.0, f64::max);
        lo > 1.3
    };

    ExpResult {
        id: "f2",
        title: "α-dependence and the jump at α = 1 (Theorem 1 constant)",
        tables: vec![table],
        notes: vec![
            "ratio ≤ is flow / provable OPT lower bound (conservative)".to_string(),
            format!("Parallel-SRPT optimal at α=1 (matches fluid SRPT): {psrpt_optimal_at_one}"),
        ],
        pass: degraded_low_alpha && psrpt_optimal_at_one,
    }
}
