//! T4 — EQUI is ≈2-competitive on batch release (Edmonds et al.).
//!
//! A sanity check of the whole substrate against prior art: with all jobs
//! released at time 0 and *arbitrary* speed-up curves, equipartition's
//! total flow is at most twice optimal. We measure `EQUI / UB` where the
//! UB is the best feasible schedule found — a rigorous lower bound on
//! EQUI's true ratio, so every value must be ≤ 2 (and `EQUI / LB` gives
//! the conservative upper estimate).

use parsched::{Equi, PolicyKind};
use parsched_opt::OptEstimate;
use parsched_sim::simulate;
use parsched_workloads::batch::BatchWorkload;
use parsched_workloads::random::{AlphaDist, SizeDist};

use super::{ExpOptions, ExpResult};
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const M: f64 = 8.0;
const P: f64 = 32.0;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let ns: Vec<usize> = if opts.quick {
        vec![8, 32]
    } else {
        vec![4, 8, 16, 32, 64]
    };
    let seeds: Vec<u64> = if opts.quick {
        vec![opts.seed]
    } else {
        (0..3).map(|i| opts.seed + i).collect()
    };

    let mut cells = Vec::new();
    for &n in &ns {
        for &seed in &seeds {
            for mixed in [false, true] {
                cells.push((n, seed, mixed));
            }
        }
    }
    let rows = parallel_map(cells, |(n, seed, mixed)| {
        let w = BatchWorkload {
            n,
            sizes: SizeDist::LogUniform { p: P },
            alphas: AlphaDist::Uniform { lo: 0.1, hi: 0.9 },
            seed,
        };
        let inst = if mixed {
            w.generate_mixed_curves().expect("mixed batch")
        } else {
            w.generate().expect("batch")
        };
        let est =
            OptEstimate::bracket_with(&inst, M, &PolicyKind::all_standard(), &[]).expect("bracket");
        let equi = simulate(&inst, &mut Equi::new(), M)
            .expect("equi")
            .metrics
            .total_flow;
        (n, seed, mixed, equi, est)
    });

    let mut table = Table::new(
        format!("T4: EQUI on batch release (m={M}, α ~ U[0.1,0.9])"),
        &[
            "n",
            "seed",
            "curves",
            "EQUI flow",
            "EQUI/UB (must ≤ 2)",
            "EQUI/LB",
        ],
    );
    let mut worst = 0.0f64;
    for (n, seed, mixed, equi, est) in &rows {
        let vs_ub = equi / est.upper;
        worst = worst.max(vs_ub);
        table.push_row(vec![
            n.to_string(),
            seed.to_string(),
            if *mixed { "power+amdahl+pwl" } else { "power" }.to_string(),
            fnum(*equi),
            fnum(vs_ub),
            fnum(equi / est.lower),
        ]);
    }

    ExpResult {
        id: "t4",
        title: "EQUI is 2-competitive for batch release (substrate sanity vs Edmonds)",
        tables: vec![table],
        notes: vec![format!(
            "worst measured EQUI/UB = {worst:.3}; the theorem guarantees the true ratio ≤ 2, \
             so any value > 2 would disprove the substrate"
        )],
        pass: worst <= 2.0 + 1e-6,
    }
}
