//! X3 — ablation of Intermediate-SRPT's regime boundary.
//!
//! The algorithm switches from Sequential-SRPT to EQUI exactly at
//! `|A(t)| = m`. Threshold-SRPT(θ) moves that boundary to `⌈θ·m⌉`;
//! sweeping θ across workloads shows the paper's choice `θ = 1` is the
//! sweet spot: `θ < 1` idles processors on parallelizable work in
//! underload, `θ > 1` abandons the SRPT discipline in overload.

use parsched::PolicyKind;
use parsched_sim::{simulate, Instance};
use parsched_workloads::mix::SawtoothWorkload;
use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};

use super::{ExpOptions, ExpResult};
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const M: usize = 8;
const ALPHA: f64 = 0.6;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let thetas: Vec<f64> = if opts.quick {
        vec![0.25, 1.0, 4.0]
    } else {
        vec![0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0]
    };
    let sizes = SizeDist::LogUniform { p: 32.0 };
    let mk_poisson = |load: f64, seed: u64| -> Instance {
        PoissonWorkload {
            n: if opts.quick { 150 } else { 400 },
            rate: PoissonWorkload::rate_for_load(load, M as f64, &sizes),
            sizes,
            alphas: AlphaDist::Fixed(ALPHA),
            seed,
        }
        .generate()
        .expect("poisson")
    };
    let workloads: Vec<(String, Instance)> = vec![
        ("poisson-0.7x".to_string(), mk_poisson(0.7, opts.seed)),
        ("poisson-1.2x".to_string(), mk_poisson(1.2, opts.seed + 1)),
        (
            "sawtooth".to_string(),
            SawtoothWorkload::crossing(M, if opts.quick { 4 } else { 10 }, ALPHA)
                .generate()
                .expect("sawtooth"),
        ),
    ];

    let rows = parallel_map(thetas.clone(), |theta| {
        let flows: Vec<f64> = workloads
            .iter()
            .map(|(_, inst)| {
                simulate(
                    &inst.clone(),
                    &mut PolicyKind::Threshold(theta).build(),
                    M as f64,
                )
                .expect("run")
                .metrics
                .total_flow
            })
            .collect();
        (theta, flows)
    });

    // Normalize each workload column by its θ = 1 value.
    let base_idx = thetas
        .iter()
        .position(|&t| (t - 1.0).abs() < 1e-12)
        .expect("θ=1 in grid");
    let base = &rows[base_idx].1;
    let mut headers = vec!["θ".to_string()];
    headers.extend(workloads.iter().map(|(n, _)| format!("{n} (×θ=1)")));
    let mut table = Table::with_headers(
        format!("X3: Threshold-SRPT(θ) flow normalized to θ=1 (m={M}, α={ALPHA})"),
        headers,
    );
    let mut worst_at_one = 1.0f64;
    for (theta, flows) in &rows {
        let mut row = vec![fnum(*theta)];
        for (f, b) in flows.iter().zip(base) {
            let norm = f / b;
            if (*theta - 1.0).abs() > 1e-12 {
                worst_at_one = worst_at_one.min(norm);
            }
            row.push(fnum(norm));
        }
        table.push_row(row);
    }

    // Shape: θ = 1 is near-optimal across the grid — no alternative θ
    // beats it by more than a few percent on any workload, and the
    // extremes are clearly worse somewhere.
    let extremes_hurt = rows.iter().any(|(theta, flows)| {
        (*theta <= 0.5 || *theta >= 2.0) && flows.iter().zip(base).any(|(f, b)| f / b > 1.15)
    });
    let theta_one_near_best = worst_at_one > 0.9;

    ExpResult {
        id: "x3",
        title: "Ablation: the regime boundary belongs exactly at |A| = m",
        tables: vec![table],
        notes: vec![
            format!("best improvement any θ≠1 achieves anywhere: ×{worst_at_one:.3}"),
            "values > 1 mean worse than Intermediate-SRPT (θ = 1)".to_string(),
        ],
        pass: extremes_hurt && theta_one_near_best,
    }
}
