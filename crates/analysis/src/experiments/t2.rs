//! T2 — Lemmas 1, 4, and 5 hold pointwise on real traces.
//!
//! The three structural lemmas are proved against *any* feasible schedule,
//! so we run Intermediate-SRPT in lockstep with every other policy as the
//! reference, on random and adversarial workloads, and report the worst
//! slack of each inequality over every overloaded sample. All slacks must
//! be ≤ 0.

use parsched::{IntermediateSrpt, PolicyKind};
use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};
use parsched_workloads::GreedyTrap;

use super::{ExpOptions, ExpResult};
use crate::potential::lockstep_report;
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const M: f64 = 4.0;
const P: f64 = 32.0;
const ALPHA: f64 = 0.5;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let n = if opts.quick { 100 } else { 400 };
    let references: Vec<PolicyKind> = PolicyKind::all_standard()
        .into_iter()
        .filter(|k| *k != PolicyKind::Greedy || !opts.quick)
        .collect();

    // Workload 1: overloaded Poisson; workload 2: the greedy trap (heavy
    // class structure).
    let sizes = SizeDist::LogUniform { p: P };
    let poisson = PoissonWorkload {
        n,
        rate: PoissonWorkload::rate_for_load(1.3, M, &sizes),
        sizes,
        alphas: AlphaDist::Fixed(ALPHA),
        seed: opts.seed,
    }
    .generate()
    .expect("poisson");
    let trap = GreedyTrap::new(M as usize, ALPHA)
        .with_stream_duration(if opts.quick { 8.0 } else { 32.0 })
        .instance()
        .expect("trap");
    let workloads = vec![("poisson-1.3x", poisson), ("greedy-trap", trap)];

    let mut cells = Vec::new();
    for (wname, inst) in &workloads {
        for kind in &references {
            cells.push((wname.to_string(), inst.clone(), *kind));
        }
    }
    let rows = parallel_map(cells, |(wname, inst, kind)| {
        let rep = lockstep_report(
            &inst,
            M,
            &mut IntermediateSrpt::new(),
            &mut kind.build(),
            ALPHA,
        )
        .expect("lockstep");
        (wname, kind.name(), rep)
    });

    let mut table = Table::new(
        format!("T2: worst lemma slacks, Intermediate-SRPT vs reference (m={M}, ≤0 ⇒ holds)"),
        &[
            "workload",
            "reference",
            "samples",
            "Lemma 1",
            "Lemma 4",
            "Lemma 5",
        ],
    );
    let mut all_hold = true;
    for (wname, rname, rep) in &rows {
        let l = &rep.lemmas;
        all_hold &= l.lemma1_ok() && l.lemma4_ok() && l.lemma5_ok();
        table.push_row(vec![
            wname.clone(),
            rname.clone(),
            l.overloaded_samples.to_string(),
            fnum(l.lemma1_worst),
            fnum(l.lemma4_worst),
            fnum(l.lemma5_worst),
        ]);
    }
    let checked_samples = rows
        .iter()
        .map(|(_, _, r)| r.lemmas.overloaded_samples)
        .sum::<usize>();

    // Second table: how close Lemma 4's per-class ceiling m·2^{k+1} comes
    // to binding (peak ΔV_{≤k} / ceiling, worst class per reference).
    let mut util_table = Table::new(
        "T2b: Lemma 4 utilization per class — peak ΔV_{≤k} / (m·2^{k+1}), ≤1 ⇒ holds",
        &["workload", "reference", "max over k", "binding class"],
    );
    let mut max_utilization = f64::NEG_INFINITY;
    for (wname, rname, rep) in &rows {
        let util = rep.lemmas.lemma4_utilization(M);
        let (worst_k, worst_u) =
            util.iter().fold(
                (0, f64::NEG_INFINITY),
                |acc, &(k, u)| {
                    if u > acc.1 {
                        (k, u)
                    } else {
                        acc
                    }
                },
            );
        max_utilization = max_utilization.max(worst_u);
        util_table.push_row(vec![
            wname.clone(),
            rname.clone(),
            fnum(worst_u),
            worst_k.to_string(),
        ]);
    }

    ExpResult {
        id: "t2",
        title: "Lemmas 1, 4, 5 verified pointwise on traces",
        tables: vec![table, util_table],
        notes: vec![
            format!(
                "{checked_samples} overloaded samples checked across {} (workload, reference) pairs",
                rows.len()
            ),
            format!(
                "Lemma 4's ceiling peaked at {:.0}% utilization — the bound has real teeth \
                 on these traces, it is not vacuously loose",
                100.0 * max_utilization
            ),
        ],
        pass: all_hold && checked_samples > 0 && max_utilization <= 1.0 + 1e-9,
    }
}
