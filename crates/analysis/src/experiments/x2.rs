//! X2 — speed augmentation rescues the non-clairvoyant baselines.
//!
//! The paper's related-work section leans on two classic results: EQUI is
//! `(2+ε)`-speed `O(1)`-competitive (Edmonds), and LAPS is scalable
//! (`(1+β+ε)`-speed `O(1)`-competitive, Edmonds–Pruhs). We replay fixed
//! instances (an overloaded Poisson workload and a Theorem-2 adversarial
//! instance materialized at speed 1) with the engine's speed-augmentation
//! knob and measure `flow_s / UB(OPT at speed 1)`. The shape: both
//! policies' ratios collapse toward O(1) once `s` clears their respective
//! thresholds, while at `s = 1` the adversarial instance hurts them —
//! exactly why augmentation-free guarantees (the paper's setting) are the
//! harder target.

use parsched::{Equi, PolicyKind};
use parsched_sim::{Engine, EngineConfig, Instance, NullObserver, Policy, StaticSource};
use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};
use parsched_workloads::PhaseFamily;

use super::util::bracket_cheap;
use super::{ExpOptions, ExpResult};
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const M: usize = 4;
const ALPHA: f64 = 0.5;

fn run_with_speed(inst: &Instance, policy: &mut dyn Policy, m: f64, speed: f64) -> f64 {
    let mut src = StaticSource::new(inst);
    let mut obs = NullObserver;
    Engine::new(
        EngineConfig::new(m).with_speed(speed),
        policy,
        &mut src,
        &mut obs,
    )
    .run()
    .expect("augmented run")
    .metrics
    .total_flow
}

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let speeds: Vec<f64> = if opts.quick {
        vec![1.0, 2.0, 3.0]
    } else {
        vec![1.0, 1.25, 1.5, 2.0, 2.5, 3.0]
    };

    // Fixed instances: an overloaded Poisson workload and the phase-family
    // instance materialized against EQUI at speed 1.
    let sizes = SizeDist::LogUniform { p: 32.0 };
    let poisson = PoissonWorkload {
        n: if opts.quick { 150 } else { 400 },
        rate: PoissonWorkload::rate_for_load(1.2, M as f64, &sizes),
        sizes,
        alphas: AlphaDist::Fixed(ALPHA),
        seed: opts.seed,
    }
    .generate()
    .expect("poisson");
    let fam = PhaseFamily::new(M, ALPHA, 32.0).with_stream_len(if opts.quick { 128 } else { 1024 });
    let (adv_outcome, record) = fam.run_against(&mut Equi::new()).expect("adversary");
    let plan = fam.opt_plan(&record).expect("certificate");
    let adv_est = bracket_cheap(
        &adv_outcome.instance,
        M as f64,
        &[("standard-schedule".to_string(), plan)],
    )
    .expect("bracket");
    let poisson_est = bracket_cheap(&poisson, M as f64, &[]).expect("bracket");

    let mut cells = Vec::new();
    for &s in &speeds {
        for kind in [PolicyKind::Equi, PolicyKind::Laps(0.5)] {
            cells.push((s, kind));
        }
    }
    let instances = [
        ("poisson-1.2x", &poisson, poisson_est.upper),
        ("phase-adversary", &adv_outcome.instance, adv_est.upper),
    ];
    let rows = parallel_map(cells, |(s, kind)| {
        let mut per_inst = Vec::new();
        for (name, inst, ub) in &instances {
            let flow = run_with_speed(inst, &mut kind.build(), M as f64, s);
            per_inst.push((name.to_string(), flow / ub));
        }
        (s, kind.name(), per_inst)
    });

    let mut table = Table::new(
        format!("X2: s-speed flow / OPT-UB(speed 1) (m={M}, α={ALPHA})"),
        &["speed", "policy", "poisson-1.2x", "phase-adversary"],
    );
    let equi_at = |target: f64| -> f64 {
        rows.iter()
            .filter(|(s, name, _)| (*s - target).abs() < 1e-9 && name == "EQUI")
            .map(|(_, _, per)| per.iter().map(|(_, r)| *r).fold(0.0, f64::max))
            .next()
            .unwrap_or(f64::NAN)
    };
    let equi_1 = equi_at(1.0);
    let equi_fast = equi_at(*speeds.last().expect("speeds"));
    for (s, name, per) in &rows {
        table.push_row(vec![fnum(*s), name.clone(), fnum(per[0].1), fnum(per[1].1)]);
    }

    // Shape: augmentation helps a lot — EQUI's worst normalized flow at
    // the top speed is far below its speed-1 value (and small in absolute
    // terms; "O(1)" at this scale).
    let pass = equi_fast < 0.6 * equi_1 && equi_fast < 3.0;
    ExpResult {
        id: "x2",
        title: "Speed augmentation rescues EQUI/LAPS (related-work context)",
        tables: vec![table],
        notes: vec![
            "values are flow at speed s divided by the speed-1 OPT upper bound".to_string(),
            format!(
                "EQUI worst cell: {equi_1:.2} at s=1 → {equi_fast:.2} at s={}",
                speeds.last().expect("speeds")
            ),
        ],
        pass,
    }
}
