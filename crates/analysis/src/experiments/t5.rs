//! T5 — fairness: the stretch trade-off behind SRPT-style policies.
//!
//! Total flow time is a *throughput* objective; the classic worry about
//! SRPT-style policies is fairness to large jobs. Stretch (`F_j / p_j`)
//! is the standard lens: a policy with small total flow but huge max
//! stretch is starving somebody. This table reports mean and max stretch
//! per policy on heavy-tailed Poisson workloads — the regime where the
//! trade-off bites.
//!
//! Expected shape: Intermediate-SRPT (and Sequential-SRPT/EQUI) land in
//! the efficient-and-fair corner — low flow AND bounded max stretch —
//! while the recency/parallelism-biased policies starve someone badly:
//! LAPS postpones *old* jobs indefinitely under overload, SETF restarts
//! everything behind fresh arrivals, and Parallel-SRPT parks the heavy
//! tail behind its hoarded machine. Their max stretch blows up by an
//! order of magnitude relative to Intermediate-SRPT's.

use parsched::PolicyKind;
use parsched_sim::simulate;
use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};

use super::{ExpOptions, ExpResult};
use crate::stats::geomean;
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const M: f64 = 8.0;
const P: f64 = 64.0;
const ALPHA: f64 = 0.5;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let loads: Vec<f64> = if opts.quick {
        vec![1.1]
    } else {
        vec![0.8, 1.1]
    };
    let seeds: Vec<u64> = if opts.quick {
        vec![opts.seed]
    } else {
        (0..3).map(|i| opts.seed + i).collect()
    };
    let n = if opts.quick { 150 } else { 500 };

    let mut cells = Vec::new();
    for &load in &loads {
        for &seed in &seeds {
            cells.push((load, seed));
        }
    }
    let runs = parallel_map(cells, |(load, seed)| {
        let sizes = SizeDist::Pareto { p: P, shape: 1.2 };
        let inst = PoissonWorkload {
            n,
            rate: PoissonWorkload::rate_for_load(load, M, &sizes),
            sizes,
            alphas: AlphaDist::Fixed(ALPHA),
            seed,
        }
        .generate()
        .expect("workload");
        let per_policy: Vec<(String, f64, f64, f64)> = PolicyKind::all_standard()
            .iter()
            .map(|k| {
                let m = simulate(&inst, &mut k.build(), M).expect("run").metrics;
                (
                    k.name(),
                    m.total_flow,
                    m.total_stretch / m.num_jobs as f64,
                    m.max_stretch,
                )
            })
            .collect();
        (load, per_policy)
    });

    let mut table = Table::new(
        format!(
            "T5: fairness — stretch per policy (m={M}, Pareto(1.2) sizes on [1,{P}], α={ALPHA})"
        ),
        &[
            "load",
            "policy",
            "total flow (gm)",
            "mean stretch (gm)",
            "max stretch (gm)",
        ],
    );
    let policies = PolicyKind::all_standard();
    let mut isrpt_max = vec![];
    let mut starver_max = vec![];
    let mut equi_flow = vec![];
    let mut isrpt_flow = vec![];
    let mut best_flow = vec![];
    for &load in &loads {
        for (pi, kind) in policies.iter().enumerate() {
            let flows: Vec<f64> = runs
                .iter()
                .filter(|(l, _)| (*l - load).abs() < 1e-12)
                .map(|(_, per)| per[pi].1)
                .collect();
            let means: Vec<f64> = runs
                .iter()
                .filter(|(l, _)| (*l - load).abs() < 1e-12)
                .map(|(_, per)| per[pi].2)
                .collect();
            let maxes: Vec<f64> = runs
                .iter()
                .filter(|(l, _)| (*l - load).abs() < 1e-12)
                .map(|(_, per)| per[pi].3)
                .collect();
            match *kind {
                PolicyKind::IntermediateSrpt => {
                    isrpt_max.push(geomean(&maxes));
                    isrpt_flow.push(geomean(&flows));
                }
                PolicyKind::Laps(_) | PolicyKind::Setf | PolicyKind::ParallelSrpt => {
                    starver_max.push(geomean(&maxes));
                }
                PolicyKind::Equi => equi_flow.push(geomean(&flows)),
                _ => {}
            }
            if pi == 0 {
                best_flow.push(f64::INFINITY);
            }
            let last = best_flow.len() - 1;
            best_flow[last] = best_flow[last].min(geomean(&flows));
            table.push_row(vec![
                fnum(load),
                kind.name(),
                fnum(geomean(&flows)),
                fnum(geomean(&means)),
                fnum(geomean(&maxes)),
            ]);
        }
    }

    // Shape: Intermediate-SRPT is flow-efficient (within 5% of the best
    // policy), its worst-case stretch stays small in absolute terms, and
    // the recency/parallelism-biased policies starve someone by a wide
    // margin relative to it.
    let isrpt_efficient = isrpt_flow
        .iter()
        .zip(&best_flow)
        .all(|(i, b)| i <= &(b * 1.05));
    let equi_pays_flow = equi_flow
        .iter()
        .zip(&isrpt_flow)
        .all(|(e, i)| e >= &(i * 0.999));
    let isrpt_fair = isrpt_max.iter().all(|&x| x < 5.0);
    let starvers_starve = starver_max
        .iter()
        .zip(isrpt_max.iter().cycle())
        .any(|(s, i)| s > &(i * 3.0));
    ExpResult {
        id: "t5",
        title: "Fairness: the stretch trade-off (flow vs starvation)",
        tables: vec![table],
        notes: vec![
            "gm = geometric mean over seeds; stretch = flow / size".to_string(),
            "heavy tails make max stretch the starvation detector".to_string(),
        ],
        pass: isrpt_efficient && equi_pays_flow && isrpt_fair && starvers_starve,
    }
}
