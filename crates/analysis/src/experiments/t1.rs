//! T1 — cross-policy comparison on Poisson workloads.
//!
//! The motivating table: mean flow time of every policy across offered
//! loads and parallelizability levels, averaged over seeds. The paper's
//! thesis translates to: Intermediate-SRPT should be at or near the best
//! policy across the whole grid, while each baseline has a region where it
//! falls off (Parallel-SRPT at low α, Sequential-SRPT at low load with
//! parallel work, EQUI/LAPS under heavy overload of mixed sizes).

use parsched::PolicyKind;
use parsched_opt::bounds;
use parsched_sim::{simulate_audited, AuditLevel, EngineBuffers};
use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};

use super::{ExpOptions, ExpResult};
use crate::stats::geomean;
use crate::sweep::{grid2, simulate_audited_reusing, Pool};
use crate::table::{fnum, Table};

const M: f64 = 8.0;
const P: f64 = 32.0;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let loads: Vec<f64> = if opts.quick {
        vec![0.6, 1.1]
    } else {
        vec![0.5, 0.8, 0.95, 1.2]
    };
    let alphas: Vec<f64> = if opts.quick {
        vec![0.5]
    } else {
        vec![0.25, 0.5, 0.75]
    };
    let seeds: Vec<u64> = if opts.quick {
        vec![opts.seed]
    } else {
        (0..3).map(|i| opts.seed + i).collect()
    };
    let n = if opts.quick { 150 } else { 500 };
    let policies = PolicyKind::all_standard();

    let cells = grid2(&grid2(&loads, &alphas), &seeds);
    // Each sweep worker owns one set of recycled engine buffers for its
    // whole share of the grid; results are committed in input order, so
    // the table is byte-identical however many workers run it (tested in
    // `tests/sweep_pool_determinism.rs`).
    let results =
        Pool::current().map_with(EngineBuffers::new, cells, |bufs, ((load, alpha), seed)| {
            let sizes = SizeDist::Pareto { p: P, shape: 1.5 };
            let w = PoissonWorkload {
                n,
                rate: PoissonWorkload::rate_for_load(load, M, &sizes),
                sizes,
                alphas: AlphaDist::Fixed(alpha),
                seed,
            };
            let inst = w.generate().expect("workload");
            let lb = bounds::lower_bound(&inst, M);
            // Every run goes through the sampled invariant auditor: an audit
            // failure is data (the table's last column), not a panic.
            let flows: Vec<(String, f64, bool)> = PolicyKind::all_standard()
                .iter()
                .map(|k| {
                    let (out, next) = simulate_audited_reusing(
                        std::mem::take(bufs),
                        &inst,
                        k.build().as_mut(),
                        M,
                        AuditLevel::Sampled(64),
                    );
                    *bufs = next;
                    match out {
                        Ok(out) => (k.name(), out.metrics.total_flow, out.audit.is_some()),
                        Err(parsched_sim::SimError::AuditFailed { .. }) => {
                            let f = simulate_audited(&inst, &mut k.build(), M, AuditLevel::Off)
                                .expect("policy run")
                                .metrics
                                .total_flow;
                            (k.name(), f, false)
                        }
                        Err(e) => panic!("policy run: {e}"),
                    }
                })
                .collect();
            (load, alpha, lb, flows)
        });

    // Aggregate per (load, α): normalized flow = flow / LB, geomean over
    // seeds.
    let mut headers = vec!["load".to_string(), "α".to_string()];
    headers.extend(policies.iter().map(|k| k.name()));
    headers.push("audit".to_string());
    let mut table = Table::with_headers(
        format!("T1: flow / OPT-LB per policy (m={M}, P={P}, Pareto sizes, n={n})"),
        headers,
    );

    let mut isrpt_wins = 0usize;
    let mut combos = 0usize;
    let mut all_audits_pass = true;
    for &load in &loads {
        for &alpha in &alphas {
            let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
            let mut cell_audit = true;
            for (l, a, lb, flows) in &results {
                if (*l - load).abs() < 1e-12 && (*a - alpha).abs() < 1e-12 {
                    for (i, (_, f, audit_ok)) in flows.iter().enumerate() {
                        per_policy[i].push(f / lb);
                        cell_audit &= audit_ok;
                    }
                }
            }
            let norms: Vec<f64> = per_policy.iter().map(|v| geomean(v)).collect();
            combos += 1;
            all_audits_pass &= cell_audit;
            let best = norms.iter().copied().fold(f64::INFINITY, f64::min);
            // Intermediate-SRPT is index 0 in all_standard().
            if norms[0] <= best * 1.25 {
                isrpt_wins += 1;
            }
            let mut row = vec![fnum(load), fnum(alpha)];
            row.extend(norms.iter().map(|&x| fnum(x)));
            row.push(if cell_audit { "✓" } else { "✗" }.to_string());
            table.push_row(row);
        }
    }

    // Shape claim AND conservation-law audit must both hold.
    let pass = isrpt_wins * 4 >= combos * 3 && all_audits_pass;
    ExpResult {
        id: "t1",
        title: "Cross-policy comparison on Poisson workloads",
        tables: vec![table],
        notes: vec![
            "cells are geometric means over seeds of total flow / provable OPT lower bound"
                .to_string(),
            "audit column: every policy run in the cell passed the sampled invariant audit"
                .to_string(),
            format!(
                "Intermediate-SRPT within 25% of the best policy in {isrpt_wins}/{combos} cells"
            ),
        ],
        pass,
    }
}
