//! F4 — every policy suffers Ω(log P) against the Theorem 2 adversary.
//!
//! Fix the family and run the **adaptive** adversary separately against
//! each policy (the instance materializes differently per policy — that is
//! the point of adaptivity). Every row's rigorous `ratio ≥` should exceed
//! a constant: no policy escapes, which is exactly Theorem 2's claim that
//! `Ω(log P)` is forced the moment `α < 1`.

use parsched::PolicyKind;
use parsched_workloads::PhaseFamily;

use super::util::bracket_cheap;
use super::{ExpOptions, ExpResult};
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const M: usize = 4;
const ALPHA: f64 = 0.5;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let p: f64 = if opts.quick { 32.0 } else { 128.0 };
    let stream = ((p * p) as usize).min(if opts.quick { 1024 } else { 16384 });
    let policies = PolicyKind::all_standard();

    let rows = parallel_map(policies, |kind| {
        let fam = PhaseFamily::new(M, ALPHA, p).with_stream_len(stream);
        let (outcome, record) = fam.run_against(&mut kind.build()).expect("adversary run");
        let plan = fam.opt_plan(&record).expect("standard schedule");
        let est = bracket_cheap(
            &outcome.instance,
            M as f64,
            &[("standard-schedule".to_string(), plan)],
        )
        .expect("bracket");
        let worst_debt = record.midpoint_debt.iter().copied().fold(0.0f64, f64::max);
        (
            kind.name(),
            format!("{:?}", record.case),
            worst_debt,
            outcome.metrics.total_flow,
            est,
        )
    });

    let mut table = Table::new(
        format!(
            "F4: adaptive adversary vs every policy (m={M}, α={ALPHA}, P={p}, stream={stream})"
        ),
        &[
            "policy",
            "case",
            "max midpoint debt",
            "flow",
            "ratio ≥",
            "OPT witness",
        ],
    );
    let mut ratios = Vec::new();
    for (name, case, debt, flow, est) in &rows {
        let r = flow / est.upper;
        ratios.push((name.clone(), r));
        table.push_row(vec![
            name.clone(),
            case.clone(),
            fnum(*debt),
            fnum(*flow),
            fnum(r),
            est.upper_witness.clone(),
        ]);
    }

    // Shape: every policy's rigorous ratio exceeds a constant bounded away
    // from 1 (no policy is O(1)-competitive on this family at this scale),
    // and the adversary's threshold logic fired (some case recorded).
    let all_forced = ratios.iter().all(|&(_, r)| r > 1.3);
    ExpResult {
        id: "f4",
        title: "No online algorithm escapes the phase adversary (Theorem 2)",
        tables: vec![table],
        notes: vec![
            "each policy faces its own adaptively-built instance".to_string(),
            format!(
                "threshold m·log_(1/r)P = {:.1}",
                PhaseFamily::new(M, ALPHA, p).threshold()
            ),
        ],
        pass: all_forced,
    }
}
