//! T3 — the potential-function conditions of §2.1–§2.5 hold on traces.
//!
//! For Intermediate-SRPT against several references we check, per trace:
//! the Boundary condition (`Φ = 0` at both ends), the Discontinuous
//! Changes condition (no event increases `Φ`), and the per-regime
//! continuous drift bounds with the paper's `4^{1/(1-α)} log P` /
//! `2^{1/(1-α)}` shapes — reporting the *empirical O(1) constants* the
//! trace actually needed.

use parsched::{IntermediateSrpt, PolicyKind};
use parsched_workloads::mix::SawtoothWorkload;
use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};

use super::{ExpOptions, ExpResult};
use crate::potential::lockstep_report;
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const M: f64 = 4.0;
const P: f64 = 32.0;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let n = if opts.quick { 120 } else { 400 };
    let alphas: Vec<f64> = if opts.quick {
        vec![0.5]
    } else {
        vec![0.25, 0.5, 0.75]
    };

    let mut cells = Vec::new();
    for &alpha in &alphas {
        let sizes = SizeDist::LogUniform { p: P };
        let poisson = PoissonWorkload {
            n,
            rate: PoissonWorkload::rate_for_load(1.1, M, &sizes),
            sizes,
            alphas: AlphaDist::Fixed(alpha),
            seed: opts.seed,
        }
        .generate()
        .expect("poisson");
        let saw = SawtoothWorkload::crossing(M as usize, if opts.quick { 3 } else { 8 }, alpha)
            .generate()
            .expect("sawtooth");
        for (wname, inst) in [("poisson-1.1x", poisson), ("sawtooth", saw)] {
            for kind in [PolicyKind::Equi, PolicyKind::SequentialSrpt] {
                cells.push((alpha, wname.to_string(), inst.clone(), kind));
            }
        }
    }

    let rows = parallel_map(cells, |(alpha, wname, inst, kind)| {
        let rep = lockstep_report(
            &inst,
            M,
            &mut IntermediateSrpt::new(),
            &mut kind.build(),
            alpha,
        )
        .expect("lockstep");
        (alpha, wname, kind.name(), rep)
    });

    let mut table = Table::new(
        "T3: potential-function conditions per trace (Intermediate-SRPT vs reference)",
        &[
            "α",
            "workload",
            "reference",
            "Φ(0)",
            "Φ(end)",
            "max jump",
            "overload c",
            "underload c",
            "zero-OPT drift",
        ],
    );
    let mut all_ok = true;
    for (alpha, wname, rname, rep) in &rows {
        let p = &rep.potential;
        // The paper's O(1) constants: generous numeric budget of 200.
        let ok = p.satisfies_paper_conditions(200.0, 1e-3);
        all_ok &= ok;
        table.push_row(vec![
            fnum(*alpha),
            wname.clone(),
            rname.clone(),
            fnum(p.phi_start),
            fnum(p.phi_end),
            format!("{:.2e}", p.max_jump),
            fnum(p.overload_c),
            fnum(p.underload_c),
            fnum(p.overload_zero_opt_drift.max(p.underload_zero_opt_drift)),
        ]);
    }

    ExpResult {
        id: "t3",
        title: "Potential-function analysis verified numerically (§2)",
        tables: vec![table],
        notes: vec![
            "overload c: empirical constant needed in dΦ/dt ≤ c·4^{1/(1-α)}log₂P·|OPT|".to_string(),
            "underload c: empirical constant needed in |A|+dΦ/dt ≤ c·2^{1/(1-α)}·|OPT|".to_string(),
            "zero-OPT drift must be ≤ 0: with no reference jobs alive, Φ can only drain"
                .to_string(),
        ],
        pass: all_ok,
    }
}
