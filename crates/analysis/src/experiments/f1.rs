//! F1 — Intermediate-SRPT's competitive ratio grows like Θ(log P).
//!
//! Sweep `P` over the Theorem 2 phase family (with the paper's full-length
//! `P²` stream) running **Intermediate-SRPT** against the adaptive
//! adversary. Two columns carry the theorem:
//!
//! * `backlog(T)` — unfinished jobs when the stream starts, the quantity
//!   Theorem 2 lower-bounds by `Ω(m·log_{1/r} P)`; it must step up with
//!   the phase count `L ≈ ½·log_{1/r} P`.
//! * `ratio ≥` — measured rigorously from below (`flow / UB(OPT)`, with
//!   the paper's standard schedule among the witnesses); it grows with the
//!   backlog while the Theorem-1 side says `ratio / log₂ P` cannot blow
//!   up.
//!
//! Note on scale: `log_{1/r} P` has base `1/r ≈ 5–7`, so laptop-feasible
//! `P` yields `L ∈ {1, 2}` — the "logarithmic growth" shows as the
//! staircase between those plateaus, exactly as the theory predicts.

use parsched::IntermediateSrpt;
use parsched_sim::AliveTrace;
use parsched_workloads::PhaseFamily;

use super::util::bracket_cheap;
use super::{ExpOptions, ExpResult};
use crate::ratio::RatioMeasurement;
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const M: usize = 4;
const ALPHA: f64 = 0.25;

struct Row {
    p: f64,
    phases: usize,
    case: String,
    backlog: usize,
    flow: f64,
    witness: String,
    at_least: f64,
    normalized: f64,
}

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let ps: Vec<f64> = if opts.quick {
        vec![16.0, 64.0, 256.0]
    } else {
        vec![16.0, 32.0, 64.0, 128.0, 256.0, 512.0]
    };
    let rows: Vec<Row> = parallel_map(ps, |p| {
        let fam = PhaseFamily::new(M, ALPHA, p).with_stream_len((p * p) as usize);
        let mut trace = AliveTrace::new();
        let (outcome, record) = fam
            .run_against_observed(&mut IntermediateSrpt::new(), &mut trace)
            .expect("adversary run");
        let backlog = trace.alive_at(record.t_part2 - 1e-9);
        let plan = fam.opt_plan(&record).expect("standard schedule");
        let est = bracket_cheap(
            &outcome.instance,
            M as f64,
            &[("standard-schedule".to_string(), plan)],
        )
        .expect("bracket");
        let meas = RatioMeasurement::new("Intermediate-SRPT", outcome.metrics.total_flow, est);
        Row {
            p,
            phases: record.phases.len(),
            case: format!("{:?}", record.case),
            backlog,
            flow: outcome.metrics.total_flow,
            witness: meas.opt.upper_witness.clone(),
            at_least: meas.proven_at_least(),
            normalized: meas.proven_at_least() / p.log2(),
        }
    });

    let mut table = Table::new(
        format!("F1: Intermediate-SRPT ratio vs P on the Theorem-2 family (m={M}, α={ALPHA})"),
        &[
            "P",
            "log2P",
            "phases",
            "case",
            "backlog(T)",
            "flow",
            "OPT witness",
            "ratio ≥",
            "ratio/log2P",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            fnum(r.p),
            fnum(r.p.log2()),
            r.phases.to_string(),
            r.case.clone(),
            r.backlog.to_string(),
            fnum(r.flow),
            r.witness.clone(),
            fnum(r.at_least),
            fnum(r.normalized),
        ]);
    }

    // Shape checks.
    let first = rows.first().expect("non-empty sweep");
    let last = rows.last().expect("non-empty sweep");
    // 1) Ratio grows with P…
    let grows = last.at_least > first.at_least * 1.05;
    // 2) …but stays O(log P) (Theorem 1), with slack for the constants.
    let log_bounded = last.normalized < 8.0 * first.normalized.max(0.05);
    // 3) The backlog at T steps up with the phase count and always clears
    //    Theorem 2's per-phase floor (½·survival·m/2 jobs per phase).
    let backlog_grows = last.backlog > first.backlog;
    let floor = parsched::theory::survival_fraction(ALPHA) * (M as f64 / 2.0) * 0.5;
    let backlog_floor_ok = rows
        .iter()
        .all(|r| r.backlog as f64 >= (r.phases as f64 * floor).floor());
    ExpResult {
        id: "f1",
        title: "Θ(log P) scaling of Intermediate-SRPT (Theorems 1 & 2)",
        tables: vec![table],
        notes: vec![
            format!("stream length = P² per the paper; m={M}, α={ALPHA}"),
            "ratio ≥ is rigorous: algorithm flow / best feasible witness".to_string(),
            format!(
                "backlog floor per phase (Theorem 2): ½·survival·m/2 = {:.2} jobs",
                floor
            ),
        ],
        pass: grows && log_bounded && backlog_grows && backlog_floor_ok,
    }
}
