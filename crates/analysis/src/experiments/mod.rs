//! The reproduction's experiment suite.
//!
//! The paper (SPAA'14) is pure theory — it has no tables or figures — so
//! the experiment IDs here are defined by DESIGN.md's per-experiment
//! index, each derived from a theorem, lemma, or proof construction:
//!
//! | ID | Validates |
//! |----|-----------|
//! | F1 | Theorem 1/2 — Intermediate-SRPT's ratio grows like Θ(log P) |
//! | F2 | Theorem 1's `4^{1/(1−α)}` constant and the jump at `α = 1` |
//! | F3 | Lemma 10 — greedy hybrid is `Ω(P)` on the trap family |
//! | F4 | Theorem 2 — every policy suffers `Ω(log P)` vs the adversary |
//! | F5 | The overload/underload regime switch of Intermediate-SRPT |
//! | F6 | Machine-count independence of the ratio (Theorem 1 has no m) |
//! | T1 | Cross-policy comparison on Poisson workloads |
//! | T2 | Lemmas 1/4/5 hold pointwise on traces |
//! | T3 | Potential-function conditions (§2.1–2.5) hold on traces |
//! | T4 | EQUI is ~2-competitive on batch release (Edmonds sanity) |
//! | T5 | Fairness: the stretch trade-off behind SRPT-style policies |
//! | X2 | Speed augmentation rescues EQUI/LAPS (related-work claims) |
//! | X3 | Ablation: the regime boundary belongs exactly at \|A\| = m |
//!
//! Each experiment returns tables (terminal + markdown + CSV renderable)
//! and a `pass` verdict encoding the paper-predicted *shape* (who wins, by
//! roughly what factor, where the crossover falls) — not absolute numbers.

mod f1;
mod f2;
mod f3;
mod f4;
mod f5;
mod f6;
mod t1;
mod t2;
mod t3;
mod t4;
mod t5;
mod x2;
mod x3;

use crate::table::Table;

/// Options shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Shrink grids for CI/tests (seconds instead of minutes).
    pub quick: bool,
    /// Base RNG seed for randomized workloads.
    pub seed: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 0x5eed_5eed,
        }
    }
}

impl ExpOptions {
    /// Quick-mode options (used by tests and `--quick`).
    pub fn quick() -> Self {
        Self {
            quick: true,
            ..Self::default()
        }
    }
}

/// The output of one experiment.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// Experiment id (`f1` … `t4`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form notes (parameters, caveats, derived constants).
    pub notes: Vec<String>,
    /// Whether the paper-predicted shape held.
    pub pass: bool,
}

impl ExpResult {
    /// Renders everything for a terminal.
    pub fn render(&self) -> String {
        let mut out = format!("### {} — {}\n", self.id.to_uppercase(), self.title);
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.render());
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out.push_str(&format!(
            "  verdict: {}\n",
            if self.pass {
                "SHAPE OK"
            } else {
                "SHAPE MISMATCH"
            }
        ));
        out
    }
}

/// All experiment ids, in presentation order.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "f1", "f2", "f3", "f4", "f5", "f6", "t1", "t2", "t3", "t4", "t5", "x2", "x3",
    ]
}

/// Runs one experiment by id.
pub fn run(id: &str, opts: &ExpOptions) -> Option<ExpResult> {
    match id.to_ascii_lowercase().as_str() {
        "f1" => Some(f1::run(opts)),
        "f2" => Some(f2::run(opts)),
        "f3" => Some(f3::run(opts)),
        "f4" => Some(f4::run(opts)),
        "f5" => Some(f5::run(opts)),
        "f6" => Some(f6::run(opts)),
        "t1" => Some(t1::run(opts)),
        "t2" => Some(t2::run(opts)),
        "t3" => Some(t3::run(opts)),
        "t4" => Some(t4::run(opts)),
        "t5" => Some(t5::run(opts)),
        "x2" => Some(x2::run(opts)),
        "x3" => Some(x3::run(opts)),
        _ => None,
    }
}

pub(crate) mod util {
    use parsched::PolicyKind;
    use parsched_opt::OptEstimate;
    use parsched_sim::{AllocationPlan, Instance, SimError};

    /// A cheap witness set for OPT upper bounds on large adversarial
    /// instances (the full policy set includes Greedy, whose quantum
    /// re-decisions are costly at scale).
    pub(crate) fn cheap_witnesses() -> Vec<PolicyKind> {
        vec![PolicyKind::SequentialSrpt, PolicyKind::Equi]
    }

    /// Brackets OPT using the cheap witnesses plus any hand plans.
    pub(crate) fn bracket_cheap(
        instance: &Instance,
        m: f64,
        plans: &[(String, AllocationPlan)],
    ) -> Result<OptEstimate, SimError> {
        OptEstimate::bracket_with(instance, m, &cheap_witnesses(), plans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("nope", &ExpOptions::quick()).is_none());
    }

    #[test]
    fn all_ids_resolve() {
        // Smoke-run of the registry happens in integration tests (each
        // experiment is exercised there); here we only check the id map is
        // total without running anything heavy.
        for id in all_ids() {
            assert!(matches!(
                *id,
                "f1" | "f2"
                    | "f3"
                    | "f4"
                    | "f5"
                    | "f6"
                    | "t1"
                    | "t2"
                    | "t3"
                    | "t4"
                    | "t5"
                    | "x2"
                    | "x3"
            ));
        }
    }
}
