//! F5 — Intermediate-SRPT's regime switch in action.
//!
//! A sawtooth workload repeatedly crosses the `|A(t)| = m` boundary. We
//! trace `|A(t)|` under Intermediate-SRPT and verify it behaves exactly
//! like Sequential-SRPT while overloaded and exactly like EQUI while
//! underloaded — by construction of the algorithm, but here observed on a
//! live trace — and compare total flows of the three policies plus the
//! pure-regime baselines.

use parsched::{Equi, IntermediateSrpt, PolicyKind, SequentialSrpt};
use parsched_sim::{simulate, simulate_with_observer, AliveTrace};
use parsched_workloads::mix::SawtoothWorkload;

use super::{ExpOptions, ExpResult};
use crate::table::{fnum, Table};

const M: usize = 8;
const ALPHA: f64 = 0.6;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let bursts = if opts.quick { 3 } else { 10 };
    let w = SawtoothWorkload::crossing(M, bursts, ALPHA);
    let inst = w.generate().expect("sawtooth");

    let mut trace = AliveTrace::new();
    let isrpt = simulate_with_observer(&inst, &mut IntermediateSrpt::new(), M as f64, &mut trace)
        .expect("isrpt run");

    // Alive-count time series, sampled at events (step function).
    let mut series = Table::new(
        format!(
            "F5a: |A(t)| under Intermediate-SRPT (m={M}, sawtooth bursts of {} jobs)",
            2 * M
        ),
        &["t", "|A(t)|", "regime"],
    );
    for pt in trace.points() {
        series.push_row(vec![
            fnum(pt.t),
            pt.alive.to_string(),
            if pt.alive >= M {
                "overloaded"
            } else {
                "underloaded"
            }
            .to_string(),
        ]);
    }

    // Cross-policy flows on the same workload.
    let mut flows = Table::new(
        "F5b: total flow per policy on the sawtooth",
        &["policy", "total flow", "vs ISRPT"],
    );
    let mut seq_flow = f64::NAN;
    let mut equi_flow = f64::NAN;
    for kind in PolicyKind::all_standard() {
        let f = simulate(&inst, &mut kind.build(), M as f64)
            .expect("policy run")
            .metrics
            .total_flow;
        if kind == PolicyKind::SequentialSrpt {
            seq_flow = f;
        }
        if kind == PolicyKind::Equi {
            equi_flow = f;
        }
        flows.push_row(vec![
            kind.name(),
            fnum(f),
            fnum(f / isrpt.metrics.total_flow),
        ]);
    }

    // Regime-agreement check: run on an always-overloaded prefix and an
    // always-underloaded instance; ISRPT must match the pure policies
    // exactly there.
    let overloaded_only = SawtoothWorkload {
        burst: 4 * M,
        bursts: 1,
        period: 1.0,
        size: 1.0,
        alpha: ALPHA,
    }
    .generate()
    .expect("burst");
    let a = simulate(&overloaded_only, &mut IntermediateSrpt::new(), M as f64)
        .expect("isrpt")
        .metrics
        .total_flow;
    let b = simulate(&overloaded_only, &mut SequentialSrpt::new(), M as f64)
        .expect("ssrpt")
        .metrics
        .total_flow;
    // 4m identical unit jobs never leave overload until the last m; the
    // final stretch dips underloaded where ISRPT = EQUI can only help.
    let overload_agree = a <= b + 1e-6;
    let underloaded_only = SawtoothWorkload {
        burst: M / 2,
        bursts: 2,
        period: 10.0,
        size: 2.0,
        alpha: ALPHA,
    }
    .generate()
    .expect("quiet");
    let c = simulate(&underloaded_only, &mut IntermediateSrpt::new(), M as f64)
        .expect("isrpt")
        .metrics
        .total_flow;
    let d = simulate(&underloaded_only, &mut Equi::new(), M as f64)
        .expect("equi")
        .metrics
        .total_flow;
    let underload_agree = (c - d).abs() < 1e-6;

    let crossed = trace.overloaded_fraction(M);
    ExpResult {
        id: "f5",
        title: "Overload ↔ underload regime switching",
        tables: vec![series, flows],
        notes: vec![
            format!("fraction of event samples overloaded: {crossed:.2}"),
            format!("ISRPT ≤ Sequential-SRPT on pure overload: {overload_agree}"),
            format!(
                "ISRPT ≡ EQUI on pure underload: {underload_agree} (Δ = {:.2e})",
                (c - d).abs()
            ),
            format!("Sequential-SRPT flow {seq_flow:.1}, EQUI flow {equi_flow:.1} on the sawtooth"),
        ],
        pass: crossed > 0.0 && crossed < 1.0 && overload_agree && underload_agree,
    }
}
