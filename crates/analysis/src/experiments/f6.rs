//! F6 — the competitive ratio does not grow with m (machine-count
//! independence of Theorem 1).
//!
//! Theorem 1's bound `O(4^{1/(1-α)}·log P)` contains no `m`; Theorem 2's
//! lower bound likewise scales the *flow* with `m` but not the *ratio*.
//! A falsifiable consequence: sweeping `m` at fixed `α, P` on the phase
//! family, Intermediate-SRPT's rigorous ratio should stay flat (each
//! doubling of `m` doubles both the online flow and the certificate's).
//! Policies whose waste scales with `m` — Parallel-SRPT hoards `m`
//! processors for `m^α` work — must instead degrade.

use parsched::{IntermediateSrpt, ParallelSrpt};
use parsched_sim::Policy;
use parsched_workloads::PhaseFamily;

use super::util::bracket_cheap;
use super::{ExpOptions, ExpResult};
use crate::sweep::parallel_map;
use crate::table::{fnum, Table};

const ALPHA: f64 = 0.5;
const P: f64 = 64.0;

pub(super) fn run(opts: &ExpOptions) -> ExpResult {
    let ms: Vec<usize> = if opts.quick {
        vec![2, 8]
    } else {
        vec![2, 4, 8, 16, 32]
    };
    // A capped stream suffices here: both the online flow and the
    // certificate scale linearly with the stream, so the *ratio* columns
    // stabilize long before P² waves — and Parallel-SRPT's unbounded
    // backlog makes full-length streams quadratically expensive.
    let stream = if opts.quick { 512 } else { 1024 };

    let rows = parallel_map(ms, |m| {
        let fam = PhaseFamily::new(m, ALPHA, P).with_stream_len(stream);
        let measure = |policy: &mut dyn Policy| {
            let (outcome, record) = fam.run_against(policy).expect("adversary run");
            let plan = fam.opt_plan(&record).expect("certificate");
            let est = bracket_cheap(
                &outcome.instance,
                m as f64,
                &[("standard-schedule".to_string(), plan)],
            )
            .expect("bracket");
            outcome.metrics.total_flow / est.upper
        };
        let isrpt = measure(&mut IntermediateSrpt::new());
        let psrpt = measure(&mut ParallelSrpt::new());
        (m, isrpt, psrpt)
    });

    let mut table = Table::new(
        format!("F6: ratio vs m on the Theorem-2 family (α={ALPHA}, P={P}, stream={stream})"),
        &["m", "ISRPT ratio ≥", "PSRPT ratio ≥", "PSRPT/ISRPT"],
    );
    for &(m, isrpt, psrpt) in &rows {
        table.push_row(vec![
            m.to_string(),
            fnum(isrpt),
            fnum(psrpt),
            fnum(psrpt / isrpt),
        ]);
    }

    // Shape: ISRPT's ratio is m-independent (spread < 40% across a 16×
    // range of m); PSRPT's is far above it at every m ≥ 4.
    let isrpt_vals: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let spread = isrpt_vals.iter().cloned().fold(0.0, f64::max)
        / isrpt_vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let flat = spread < 1.4;
    let psrpt_degrades = rows.iter().filter(|r| r.0 >= 4).all(|r| r.2 > 3.0 * r.1);
    ExpResult {
        id: "f6",
        title: "Machine-count independence of the competitive ratio (Theorem 1)",
        tables: vec![table],
        notes: vec![
            format!(
                "ISRPT ratio spread across m ∈ {{2..32}}: ×{spread:.2} (flat ⇒ bound is m-free)"
            ),
            "PSRPT hoards m processors for m^α work, so its ratio must grow with m".to_string(),
        ],
        pass: flat && psrpt_degrades,
    }
}
