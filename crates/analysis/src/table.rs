//! Experiment reporting: aligned text tables, markdown, and CSV.

use std::fmt::Write as _;

/// A simple column-aligned table accumulated row by row.
///
/// Every experiment binary builds one of these and prints it in all three
/// formats so EXPERIMENTS.md can quote the markdown directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Creates a table from owned header strings (for dynamic columns,
    /// e.g. one per policy).
    pub fn with_headers(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Monospace-aligned rendering for terminals.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect();
            let _ = writeln!(out, "  {}", joined.join("  "));
        };
        line(&self.headers, &mut out);
        let total: usize = w.iter().sum::<usize>() + 2 * w.len();
        let _ = writeln!(out, "  {}", "-".repeat(total));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// GitHub-flavored markdown rendering (quoted in EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// RFC-4180-ish CSV (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with sensible experiment precision (3 significant-ish
/// decimals, fixed).
pub fn fnum(x: f64) -> String {
    if x.abs() >= 1e6 {
        format!("{x:.2e}")
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["P", "ratio"]);
        t.push_row(vec!["16".into(), "2.10".into()]);
        t.push_row(vec!["256".into(), "4.31".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("P"));
        assert!(r.contains("256"));
        // Both data rows present.
        assert_eq!(r.lines().count(), 5);
    }

    #[test]
    fn markdown_has_separator() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| P | ratio |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("q", &["a"]);
        t.push_row(vec!["x,y".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn fnum_scales_precision() {
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(42.36), "42.4");
        assert_eq!(fnum(4.32109), "4.321");
        assert_eq!(fnum(2.5e9), "2.50e9");
    }
}
