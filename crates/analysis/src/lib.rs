//! Analysis instrumentation for the SPAA'14 reproduction.
//!
//! Where `parsched-opt` brackets *what* the optimum costs, this crate
//! validates *how* the paper proves Intermediate-SRPT competitive:
//!
//! * [`potential`] — evaluates the paper's potential function
//!   `Φ(t) = 16 Σ_{i∈A(t)} z_i(t) / Γ_i(m / rank(i,t))` in **lockstep**
//!   over two simulations (the algorithm and a feasible reference
//!   schedule) and checks the Boundary, Discontinuous-Changes, and
//!   per-regime Continuous-Changes conditions of §2.1–§2.5 numerically on
//!   real traces.
//! * [`lemmas`] — pointwise checkers for Lemma 1 (local competitiveness),
//!   Lemma 4 (volume difference per class), and Lemma 5 (job-count
//!   difference), all of which the paper proves against *any* feasible
//!   schedule — so checking against arbitrary reference policies is sound.
//! * [`ratio`] — direction-aware competitive-ratio measurements built on
//!   [`parsched_opt::OptEstimate`] brackets.
//! * [`sweep`] — a deterministic parallel parameter-sweep runner
//!   (crossbeam channel + scoped threads) used by every experiment.
//! * [`table`] / [`stats`] — experiment reporting: aligned text tables,
//!   markdown, CSV, and summary statistics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod gantt;
pub mod lemmas;
pub mod potential;
pub mod ratio;
pub mod stats;
pub mod sweep;
pub mod table;

pub use lemmas::{LemmaReport, LemmaSample};
pub use potential::{lockstep_report, LockstepReport, PotentialReport};
pub use ratio::RatioMeasurement;
pub use sweep::{
    parallel_map, set_sweep_jobs, simulate_audited_reusing, streaming_sweep, sweep_jobs, Pool,
};
pub use table::Table;
