//! The paper's potential function, evaluated in lockstep over two runs.
//!
//! §2.3 defines, for the algorithm's schedule `A` and a reference schedule
//! `OPT` (any feasible schedule works for every lemma the paper proves
//! about `Φ`):
//!
//! ```text
//! z_i(t)    = max(p_i^A(t) − p_i^OPT(t), 0)
//! rank(i,t) = min(m, |{ j ∈ A(t) : r_j ≤ r_i }|)
//! Φ(t)      = 16 · Σ_{i ∈ A(t)} z_i(t) / Γ_i(m / rank(i, t))
//! ```
//!
//! The lockstep runner advances both engines to the *merged* event
//! timeline; between events every quantity is piecewise-linear, so
//! sampling `Φ` just before and just after each event measures both the
//! continuous drift `dΦ/dt` (exactly, as a per-interval average) and the
//! discontinuous jumps.

use parsched::theory;
use parsched_sim::{
    AliveSnapshot, Engine, EngineConfig, Instance, NullObserver, Policy, SimError, StaticSource,
};

use crate::lemmas::{check_sample, LemmaReport};

/// The paper's `Φ(t)`, computed from owned snapshots of both engines'
/// alive sets. `ref_remaining(id)` must return the reference schedule's
/// remaining work (0 once finished).
pub fn phi(alg_alive: &[AliveSnapshot], ref_remaining: impl Fn(u64) -> f64, m: f64) -> f64 {
    let mut jobs: Vec<&AliveSnapshot> = alg_alive.iter().collect();
    // rank(i, t) counts alive jobs released no later than i (the paper
    // assumes unique arrival times; ties break by id, which encodes
    // emission order).
    jobs.sort_by(|a, b| {
        a.release
            .partial_cmp(&b.release)
            .expect("finite releases")
            .then(a.id.cmp(&b.id))
    });
    let m_int = m.round().max(1.0);
    let mut total = 0.0;
    for (pos, job) in jobs.iter().enumerate() {
        let rank = ((pos + 1) as f64).min(m_int);
        let z = (job.remaining - ref_remaining(job.id.0)).max(0.0);
        let gamma = job.curve.rate(m / rank);
        debug_assert!(gamma > 0.0);
        total += z / gamma;
    }
    theory::PHI_PREFACTOR * total
}

/// Verdicts from one lockstep run.
#[derive(Debug, Clone, PartialEq)]
pub struct PotentialReport {
    /// `Φ` at the first sample (must be 0: no jobs yet).
    pub phi_start: f64,
    /// `Φ` after the last event (must be 0: both schedules empty).
    pub phi_end: f64,
    /// Largest increase of `Φ` across any discontinuous event
    /// (§2.3 proves jumps are never positive).
    pub max_jump: f64,
    /// Largest empirical constant `c` such that
    /// `dΦ/dt ≤ c · 4^{1/(1-α)} log₂P · |OPT(t)|` was needed at an
    /// overloaded interval with `|OPT(t)| > 0` (Lemma 2's shape).
    pub overload_c: f64,
    /// Largest `dΦ/dt` over overloaded intervals with `|OPT(t)| = 0`
    /// (must be ≤ 0 up to numerics: with no reference jobs left the
    /// potential can only drain).
    pub overload_zero_opt_drift: f64,
    /// Largest empirical constant `c` such that
    /// `|A(t)| + dΦ/dt ≤ c · 2^{1/(1-α)} · |OPT(t)|` was needed at an
    /// underloaded interval with `|OPT(t)| > 0` (Lemma 3's shape).
    pub underload_c: f64,
    /// Largest `|A(t)| + dΦ/dt` over underloaded intervals with
    /// `|OPT(t)| = 0` (must be ≤ 0 up to numerics).
    pub underload_zero_opt_drift: f64,
    /// Number of continuous intervals measured.
    pub intervals: usize,
}

impl PotentialReport {
    /// Whether every condition the paper proves holds on this trace
    /// (with `max_c` allowed for the two O(1) constants and `tol` for
    /// float noise).
    pub fn satisfies_paper_conditions(&self, max_c: f64, tol: f64) -> bool {
        self.phi_start.abs() <= tol
            && self.phi_end.abs() <= tol
            && self.max_jump <= tol
            && self.overload_c <= max_c
            && self.overload_zero_opt_drift <= tol
            && self.underload_c <= max_c
            && self.underload_zero_opt_drift <= tol
    }
}

/// A potential report plus the pointwise lemma checks gathered on the same
/// trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LockstepReport {
    /// Potential-function conditions.
    pub potential: PotentialReport,
    /// Lemma 1/4/5 checks.
    pub lemmas: LemmaReport,
    /// Total flow of the algorithm's run.
    pub alg_flow: f64,
    /// Total flow of the reference run.
    pub ref_flow: f64,
}

/// Runs `alg` and `reference` on `instance` in lockstep and checks every
/// §2 condition along the merged event timeline.
///
/// `alpha` is the paper's `α = max_j α_j` (used in the Lemma 2/3 bound
/// shapes); pass the workload's generating exponent.
pub fn lockstep_report(
    instance: &Instance,
    m: f64,
    alg: &mut dyn Policy,
    reference: &mut dyn Policy,
    alpha: f64,
) -> Result<LockstepReport, SimError> {
    let p = instance.size_ratio().max(2.0);
    let four_log = theory::four_power(alpha).min(1e12) * p.log2().max(1.0);
    let two_pow = 2f64.powf(1.0 / (1.0 - alpha).max(1e-9)).min(1e12);

    let mut src_a = StaticSource::new(instance);
    let mut src_b = StaticSource::new(instance);
    let mut obs_a = NullObserver;
    let mut obs_b = NullObserver;
    let mut a = Engine::new(EngineConfig::new(m), alg, &mut src_a, &mut obs_a);
    let mut b = Engine::new(EngineConfig::new(m), reference, &mut src_b, &mut obs_b);

    let phi_of = |a: &Engine<'_>, b: &Engine<'_>| {
        let snap = a.alive_snapshot();
        phi(
            &snap,
            |id| b.remaining_of(parsched_sim::JobId(id)).unwrap_or(0.0),
            m,
        )
    };

    let mut report = PotentialReport {
        phi_start: phi_of(&a, &b),
        phi_end: 0.0,
        max_jump: f64::NEG_INFINITY,
        overload_c: 0.0,
        overload_zero_opt_drift: f64::NEG_INFINITY,
        underload_c: 0.0,
        underload_zero_opt_drift: f64::NEG_INFINITY,
        intervals: 0,
    };
    let mut lemmas = LemmaReport::default();
    let m_int = m.round().max(1.0) as usize;

    let mut prev_t = 0.0f64;
    let mut prev_phi = report.phi_start;
    loop {
        let ta = a.next_event_time()?;
        let tb = b.next_event_time()?;
        let t = match (ta, tb) {
            (None, None) => break,
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (Some(x), Some(y)) => x.min(y),
        };
        let dt = t - prev_t;
        let mut phi_pre = prev_phi;
        if dt > 1e-6 {
            // Sample just before the event: allocations (hence drift) are
            // constant on (prev_t, t), so the averaged slope is the exact
            // instantaneous one.
            // Small enough that the continuous drift accrued on
            // [t−ε, t] (rate ≤ 16(|A|+|OPT|)) cannot masquerade as a
            // discontinuous jump, large enough that completions at t don't
            // fire early through the engine's snap tolerance.
            let eps = (dt * 1e-6).clamp(1e-9, 1e-6);
            let t_pre = t - eps;
            a.advance_to(t_pre)?;
            b.advance_to(t_pre)?;
            phi_pre = phi_of(&a, &b);
            let slope = (phi_pre - prev_phi) / (t_pre - prev_t);
            let alg_alive = a.num_alive();
            let ref_alive = b.num_alive();
            report.intervals += 1;
            if alg_alive >= m_int {
                if ref_alive > 0 {
                    report.overload_c =
                        report.overload_c.max(slope / (four_log * ref_alive as f64));
                } else {
                    report.overload_zero_opt_drift = report.overload_zero_opt_drift.max(slope);
                }
            } else if alg_alive > 0 {
                let lhs = alg_alive as f64 + slope;
                if ref_alive > 0 {
                    report.underload_c = report.underload_c.max(lhs / (two_pow * ref_alive as f64));
                } else {
                    report.underload_zero_opt_drift = report.underload_zero_opt_drift.max(lhs);
                }
            }
        }
        a.advance_to(t)?;
        b.advance_to(t)?;
        let phi_post = phi_of(&a, &b);
        report.max_jump = report.max_jump.max(phi_post - phi_pre);
        // Pointwise lemma checks at the post-event state.
        lemmas.absorb(&check_sample(
            &a.alive_snapshot(),
            &b.alive_snapshot(),
            m,
            p,
        ));
        prev_t = t;
        prev_phi = phi_post;
    }
    report.phi_end = prev_phi;
    if !report.max_jump.is_finite() {
        report.max_jump = 0.0;
    }
    if !report.overload_zero_opt_drift.is_finite() {
        report.overload_zero_opt_drift = 0.0;
    }
    if !report.underload_zero_opt_drift.is_finite() {
        report.underload_zero_opt_drift = 0.0;
    }

    let a_out = a.into_outcome()?;
    let b_out = b.into_outcome()?;
    Ok(LockstepReport {
        potential: report,
        lemmas,
        alg_flow: a_out.metrics.total_flow,
        ref_flow: b_out.metrics.total_flow,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched::{Equi, IntermediateSrpt, SequentialSrpt};
    use parsched_sim::{Instance, JobId, JobSpec};
    use parsched_speedup::Curve;

    fn mixed_instance(alpha: f64) -> Instance {
        let sizes = [
            (0.0, 4.0),
            (0.0, 1.0),
            (0.5, 2.0),
            (1.0, 8.0),
            (1.5, 1.0),
            (2.0, 3.0),
            (2.5, 1.5),
            (6.0, 2.0),
        ];
        Instance::from_sizes(&sizes, Curve::power(alpha)).unwrap()
    }

    #[test]
    fn phi_is_zero_when_schedules_agree() {
        // If the reference has the same remaining work, all z_i = 0.
        let snap = vec![AliveSnapshot {
            id: JobId(0),
            release: 0.0,
            size: 4.0,
            remaining: 2.0,
            curve: Curve::power(0.5),
        }];
        assert_eq!(phi(&snap, |_| 2.0, 4.0), 0.0);
    }

    #[test]
    fn phi_matches_hand_computation() {
        // Two alive jobs, m = 4.
        // Sorted by release: job0 (rank 1), job1 (rank 2).
        // z_0 = 3 − 1 = 2, Γ(4/1) = 2      → 1.0
        // z_1 = 2 − 0 = 2, Γ(4/2) = √2     → 2/√2 = √2
        // Φ = 16 (1 + √2).
        let mk = |id: u64, release: f64, remaining: f64| AliveSnapshot {
            id: JobId(id),
            release,
            size: 4.0,
            remaining,
            curve: Curve::power(0.5),
        };
        let snap = vec![mk(0, 0.0, 3.0), mk(1, 1.0, 2.0)];
        let refrem = |id: u64| if id == 0 { 1.0 } else { 0.0 };
        let expected = 16.0 * (1.0 + 2f64.sqrt());
        assert!((phi(&snap, refrem, 4.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn phi_ranks_saturate_at_m() {
        // With more alive jobs than machines, rank caps at m.
        let mk = |id: u64| AliveSnapshot {
            id: JobId(id),
            release: id as f64,
            size: 1.0,
            remaining: 1.0,
            curve: Curve::power(0.5),
        };
        let snap: Vec<_> = (0..5).map(mk).collect();
        // m = 2: ranks 1, 2, 2, 2, 2 → Γ(2/1)=√2, Γ(2/2)=1 for the rest.
        let val = phi(&snap, |_| 0.0, 2.0);
        let expected = 16.0 * (1.0 / 2f64.sqrt() + 4.0);
        assert!((val - expected).abs() < 1e-9);
    }

    #[test]
    fn lockstep_conditions_hold_for_isrpt_vs_equi() {
        let inst = mixed_instance(0.5);
        let rep = lockstep_report(
            &inst,
            2.0,
            &mut IntermediateSrpt::new(),
            &mut Equi::new(),
            0.5,
        )
        .unwrap();
        assert!(
            rep.potential.satisfies_paper_conditions(100.0, 1e-3),
            "{rep:?}"
        );
        assert!(rep.lemmas.lemma1_ok() && rep.lemmas.lemma4_ok() && rep.lemmas.lemma5_ok());
        assert!(rep.potential.intervals > 0);
    }

    #[test]
    fn lockstep_conditions_hold_for_isrpt_vs_sequential_srpt() {
        let inst = mixed_instance(0.3);
        let rep = lockstep_report(
            &inst,
            3.0,
            &mut IntermediateSrpt::new(),
            &mut SequentialSrpt::new(),
            0.3,
        )
        .unwrap();
        assert!(
            rep.potential.satisfies_paper_conditions(100.0, 1e-3),
            "{rep:?}"
        );
    }

    #[test]
    fn boundary_condition_zero_at_both_ends() {
        let inst = mixed_instance(0.7);
        let rep = lockstep_report(
            &inst,
            2.0,
            &mut IntermediateSrpt::new(),
            &mut Equi::new(),
            0.7,
        )
        .unwrap();
        assert!(rep.potential.phi_start.abs() < 1e-9);
        assert!(rep.potential.phi_end.abs() < 1e-6);
    }

    #[test]
    fn flows_reported_match_direct_simulation() {
        use parsched_sim::simulate;
        let inst = mixed_instance(0.5);
        let rep = lockstep_report(
            &inst,
            2.0,
            &mut IntermediateSrpt::new(),
            &mut Equi::new(),
            0.5,
        )
        .unwrap();
        let direct = simulate(&inst, &mut IntermediateSrpt::new(), 2.0).unwrap();
        assert!((rep.alg_flow - direct.metrics.total_flow).abs() < 1e-6);
        let direct_ref = simulate(&inst, &mut Equi::new(), 2.0).unwrap();
        assert!((rep.ref_flow - direct_ref.metrics.total_flow).abs() < 1e-6);
    }

    /// A job spec list where the algorithm gets *ahead* of the reference
    /// (z_i = 0 throughout): Φ must stay 0.
    #[test]
    fn phi_zero_when_algorithm_leads() {
        let specs = vec![JobSpec::new(JobId(0), 0.0, 4.0, Curve::FullyParallel)];
        let inst = Instance::new(specs).unwrap();
        // Algorithm: EQUI (full speed on the single job). Reference:
        // Sequential-SRPT (1 processor only) — strictly slower.
        let rep = lockstep_report(
            &inst,
            4.0,
            &mut Equi::new(),
            &mut SequentialSrpt::new(),
            1.0,
        )
        .unwrap();
        assert!(rep.potential.max_jump <= 1e-9);
        assert!(rep.potential.phi_end.abs() < 1e-9);
    }
}
