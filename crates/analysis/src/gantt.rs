//! ASCII Gantt charts from allocation traces.
//!
//! Renders one row per job on a fixed-width time axis; cell shading
//! encodes the processor share held at that moment:
//!
//! ```text
//! j0 |████████▓▓▓▓······|  share: █ ≥ 1, ▓ ≥ ½, ▒ ≥ ¼, ░ > 0, · idle
//! ```
//!
//! Useful for eyeballing regime switches (Intermediate-SRPT flips from
//! one-processor bars to wide fractional shading exactly when the alive
//! count crosses `m`) and for the examples' output.

use std::collections::BTreeMap;

use parsched_sim::{AllocationSegment, JobId};

/// Shading characters by share, descending thresholds.
const SHADES: [(f64, char); 4] = [(1.0, '█'), (0.5, '▓'), (0.25, '▒'), (0.0, '░')];

fn shade(share: f64) -> char {
    for &(threshold, ch) in &SHADES {
        if share > threshold || (threshold == 0.0 && share > 0.0) {
            return ch;
        }
        if (share - threshold).abs() < 1e-12 && threshold > 0.0 {
            return ch;
        }
    }
    '·'
}

/// Renders a Gantt chart of `segments` over `[0, horizon]` using `width`
/// character columns. Jobs are rows, ordered by id. Shares are normalized
/// by `norm` before shading (pass `1.0` to shade by absolute processors,
/// or `m` to shade by fraction of the machine).
///
/// ```
/// use parsched_analysis::gantt::render_gantt;
/// use parsched_sim::{AllocationSegment, JobId};
///
/// let segs = [AllocationSegment { start: 0.0, end: 2.0, id: JobId(0), share: 1.0 }];
/// let chart = render_gantt(&segs, 4.0, 8, 1.0);
/// assert!(chart.starts_with("j0 |████····|"));
/// ```
pub fn render_gantt(
    segments: &[AllocationSegment],
    horizon: f64,
    width: usize,
    norm: f64,
) -> String {
    assert!(horizon > 0.0 && width >= 4 && norm > 0.0);
    // Per job, per column: max share seen in that column's time window.
    let mut rows: BTreeMap<JobId, Vec<f64>> = BTreeMap::new();
    let col_dt = horizon / width as f64;
    for seg in segments {
        let row = rows.entry(seg.id).or_insert_with(|| vec![0.0; width]);
        let first = ((seg.start / col_dt).floor() as usize).min(width - 1);
        let last = (((seg.end - 1e-12) / col_dt).floor() as usize).min(width - 1);
        for cell in row.iter_mut().take(last + 1).skip(first) {
            *cell = cell.max(seg.share / norm);
        }
    }
    let mut out = String::new();
    let label_w = rows
        .keys()
        .map(|id| id.to_string().len())
        .max()
        .unwrap_or(2);
    for (id, cells) in &rows {
        out.push_str(&format!("{:>label_w$} |", id.to_string()));
        for &c in cells {
            out.push(if c > 0.0 { shade(c) } else { '·' });
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:>label_w$}  0{:>width$.1}\n",
        "t",
        horizon,
        width = width - 1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(start: f64, end: f64, id: u64, share: f64) -> AllocationSegment {
        AllocationSegment {
            start,
            end,
            id: JobId(id),
            share,
        }
    }

    #[test]
    fn renders_rows_per_job() {
        let segs = vec![seg(0.0, 5.0, 0, 1.0), seg(5.0, 10.0, 1, 2.0)];
        let g = render_gantt(&segs, 10.0, 10, 1.0);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // two jobs + axis
        assert!(lines[0].contains("j0"));
        // Job 0 busy in the first half only.
        let row0: String = lines[0]
            .chars()
            .filter(|c| *c == '█' || *c == '·')
            .collect();
        assert!(row0.starts_with("█████"));
        assert!(row0.ends_with("·····"));
    }

    #[test]
    fn shading_tracks_share_magnitude() {
        assert_eq!(shade(2.0), '█');
        assert_eq!(shade(1.0), '█');
        assert_eq!(shade(0.6), '▓');
        assert_eq!(shade(0.5), '▓');
        assert_eq!(shade(0.3), '▒');
        assert_eq!(shade(0.1), '░');
    }

    #[test]
    fn normalization_rescales_shading() {
        let segs = vec![seg(0.0, 4.0, 0, 2.0)];
        // Absolute: share 2 → █. Normalized by m=8: 0.25 → ▒.
        assert!(render_gantt(&segs, 4.0, 8, 1.0).contains('█'));
        assert!(render_gantt(&segs, 4.0, 8, 8.0).contains('▒'));
    }

    #[test]
    fn end_to_end_from_engine_trace() {
        use parsched::IntermediateSrpt;
        use parsched_sim::{simulate_with_observer, AllocationTrace, Instance};
        use parsched_speedup::Curve;
        let inst =
            Instance::from_sizes(&[(0.0, 2.0), (0.0, 2.0), (0.0, 2.0)], Curve::power(0.5)).unwrap();
        let mut trace = AllocationTrace::new();
        let out =
            simulate_with_observer(&inst, &mut IntermediateSrpt::new(), 2.0, &mut trace).unwrap();
        let g = render_gantt(trace.segments(), out.metrics.makespan, 24, 1.0);
        assert_eq!(g.lines().count(), 4);
        assert!(g.contains('█'));
    }
}
