//! Direction-aware competitive-ratio measurements.

use parsched_opt::OptEstimate;
use serde::{Deserialize, Serialize};

/// One measured competitive-ratio data point: an algorithm's total flow
/// against a bracket `LB ≤ OPT ≤ UB`.
///
/// Because OPT is bracketed rather than computed, a "ratio" is an
/// interval. The two accessors pick the *rigorous* end per claim:
///
/// * Proving an algorithm is **bad** (lower-bound experiments F3, F4) uses
///   [`RatioMeasurement::proven_at_least`] = `flow / UB` — the algorithm
///   is at least this much worse than some feasible schedule, hence than
///   OPT.
/// * Proving an algorithm is **good** (upper-bound experiments F1, F2)
///   uses [`RatioMeasurement::proven_at_most`] = `flow / LB` — the
///   algorithm is at most this much worse than the provable lower bound,
///   hence than OPT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioMeasurement {
    /// Display name of the measured algorithm.
    pub algorithm: String,
    /// The algorithm's total flow time.
    pub flow: f64,
    /// The OPT bracket.
    pub opt: OptEstimate,
}

impl RatioMeasurement {
    /// Creates a measurement.
    pub fn new(algorithm: impl Into<String>, flow: f64, opt: OptEstimate) -> Self {
        Self {
            algorithm: algorithm.into(),
            flow,
            opt,
        }
    }

    /// Rigorous lower bound on the true competitive ratio: `flow / UB`.
    pub fn proven_at_least(&self) -> f64 {
        self.flow / self.opt.upper
    }

    /// Rigorous upper bound on the true competitive ratio: `flow / LB`.
    pub fn proven_at_most(&self) -> f64 {
        self.flow / self.opt.lower
    }

    /// `[at_least, at_most]` formatted for tables.
    pub fn interval_string(&self) -> String {
        format!(
            "[{:.2}, {:.2}]",
            self.proven_at_least(),
            self.proven_at_most()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(lower: f64, upper: f64) -> OptEstimate {
        OptEstimate {
            lower,
            upper,
            upper_witness: "w".into(),
        }
    }

    #[test]
    fn interval_ends_are_ordered() {
        let m = RatioMeasurement::new("alg", 20.0, est(5.0, 10.0));
        assert_eq!(m.proven_at_least(), 2.0);
        assert_eq!(m.proven_at_most(), 4.0);
        assert!(m.proven_at_least() <= m.proven_at_most());
        assert_eq!(m.interval_string(), "[2.00, 4.00]");
    }

    #[test]
    fn tight_bracket_collapses_the_interval() {
        let m = RatioMeasurement::new("alg", 12.0, est(6.0, 6.0));
        assert_eq!(m.proven_at_least(), m.proven_at_most());
    }
}
