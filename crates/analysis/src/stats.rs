//! Summary statistics for experiment rows.

use parsched_sim::NeumaierSum;

/// Arithmetic mean (`0` for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        NeumaierSum::total(xs.iter().copied()) / xs.len() as f64
    }
}

/// Geometric mean (`0` for an empty slice; requires positive entries).
///
/// The right way to average competitive *ratios* across instances.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    debug_assert!(xs.iter().all(|&x| x > 0.0));
    (NeumaierSum::total(xs.iter().map(|x| x.ln())) / xs.len() as f64).exp()
}

/// Sample standard deviation (`0` for fewer than two entries).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mu = mean(xs);
    let var = NeumaierSum::total(xs.iter().map(|x| (x - mu).powi(2))) / (xs.len() - 1) as f64;
    var.sqrt()
}

/// The `q`-quantile (`q ∈ [0, 1]`) by linear interpolation of the sorted
/// values.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Maximum (`0` for empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((stddev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
        assert_eq!(max(&xs), 9.0);
    }
}
