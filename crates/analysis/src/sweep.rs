//! Deterministic parallel parameter sweeps.
//!
//! Every experiment is a grid of independent simulation runs; this module
//! fans them out over a bounded work-stealing [`Pool`] of scoped worker
//! threads and commits results **in input order**, so sweep output is
//! byte-identical to the serial path regardless of scheduling. (rayon is
//! not in the approved offline crate set; atomics + `std::thread::scope`
//! are all these embarrassingly parallel sweeps need.)
//!
//! # Ordering guarantee
//!
//! [`Pool::map_with`] applies `f` to each item exactly once and places the
//! result at that item's input index. Which *worker* runs an item (and in
//! what order) is scheduling-dependent, but since items are independent
//! and results are committed by index, the returned `Vec` — and therefore
//! every experiment table built from it — is identical to
//! `items.into_iter().map(...)`. Worker-local state handed out by `init`
//! (for example recycled [`EngineBuffers`]) must not leak into results;
//! the engine's buffer-reuse contract is audited separately
//! (`tests/engine_zero_alloc.rs`).
//!
//! # Work stealing
//!
//! Items are pre-partitioned into one contiguous range per worker, packed
//! into an `AtomicU64` (`lo` in the high half, `hi` in the low half).
//! Owners pop from the front of their range (cache-friendly, mostly input
//! order); a worker whose range runs dry steals single items from the
//! *back* of a victim's range via the same compare-and-swap, so skewed
//! per-item costs cannot idle a core while work remains. Since every index
//! is claimed by exactly one successful CAS, item hand-off needs no
//! locking in principle; the per-item `Mutex<Option<T>>` below is an
//! uncontended formality that keeps the crate `forbid(unsafe_code)`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use parsched_sim::{
    simulate_streaming_audited, ArrivalSource, AuditLevel, Engine, EngineBuffers, EngineConfig,
    Instance, NullObserver, Policy, RunOutcome, SimError, StaticSource, StreamingOutcome,
};

/// Process-wide worker-count override for [`Pool::current`] (0 = pick
/// automatically from `available_parallelism`). Set once at startup by
/// `parsched sweep --jobs N`; library callers normally leave it alone.
static SWEEP_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count used by [`Pool::current`] (and therefore by
/// [`parallel_map`] and every experiment sweep). `0` restores automatic
/// sizing; `1` forces the serial path, which is how the determinism tests
/// produce their reference output.
pub fn set_sweep_jobs(jobs: usize) {
    SWEEP_JOBS.store(jobs, Ordering::Relaxed);
}

/// The current [`set_sweep_jobs`] override (0 = automatic).
pub fn sweep_jobs() -> usize {
    SWEEP_JOBS.load(Ordering::Relaxed)
}

/// A bounded work-stealing pool for deterministic sweeps.
///
/// The pool itself is just a worker-count policy — threads are scoped to
/// each [`Pool::map_with`] call, so a `Pool` is `Copy`, trivially cheap,
/// and holds no OS resources between calls.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool with a fixed worker count (`0` = automatic: one worker per
    /// available core, capped by the item count at each call).
    pub fn new(jobs: usize) -> Self {
        Pool { jobs }
    }

    /// The pool configured by [`set_sweep_jobs`] (automatic by default).
    pub fn current() -> Self {
        Pool::new(sweep_jobs())
    }

    /// The worker count a call mapping `n` items would use.
    pub fn workers_for(&self, n: usize) -> usize {
        let base = if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        };
        base.min(n).max(1)
    }

    /// Maps `f` over `items`, preserving input order.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.map_with(|| (), items, |(), item| f(item))
    }

    /// Maps `f` over `items` with per-worker state, preserving input
    /// order.
    ///
    /// `init` runs once on each worker thread (and once on the caller for
    /// the serial path); the state it returns is threaded through every
    /// item that worker processes. This is how sweep workers own one set
    /// of recycled [`EngineBuffers`] across a whole grid — see
    /// [`simulate_audited_reusing`].
    ///
    /// Results are committed by input index after the scope joins, so the
    /// output is identical to the serial `map` whatever the interleaving;
    /// a panic in `f` or `init` propagates after all workers stop.
    pub fn map_with<S, T, R, I, F>(&self, init: I, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers_for(n);
        if workers <= 1 {
            let mut state = init();
            return items.into_iter().map(|item| f(&mut state, item)).collect();
        }
        assert!(n < u32::MAX as usize, "sweep too large for packed ranges");
        // Each item parks in a slot until the worker that won its index
        // claims it; the winning CAS is the unique claim, so each lock is
        // uncontended (see the module notes on `forbid(unsafe_code)`).
        let slots: Vec<Mutex<Option<T>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        // Contiguous initial partition: worker `w` owns [w·n/W, (w+1)·n/W).
        let ranges: Vec<AtomicU64> = (0..workers)
            .map(|w| AtomicU64::new(pack(w * n / workers, (w + 1) * n / workers)))
            .collect();
        let mut locals: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let slots = &slots;
                    let ranges = &ranges;
                    let init = &init;
                    let f = &f;
                    scope.spawn(move || {
                        let mut state = init();
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let idx = take_front(&ranges[w]).or_else(|| steal(ranges, w));
                            let Some(i) = idx else { break };
                            let item = slots[i]
                                .lock()
                                .expect("slot lock")
                                .take()
                                .expect("index claimed exactly once");
                            out.push((i, f(&mut state, item)));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(v) => locals.push(v),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        let mut merged: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in locals.into_iter().flatten() {
            debug_assert!(merged[i].is_none(), "index {i} produced twice");
            merged[i] = Some(r);
        }
        merged
            .into_iter()
            .map(|r| r.expect("every index was processed"))
            .collect()
    }
}

/// Packs a half-open index range into one atomic word (`lo` high, `hi`
/// low) so owner pops and thief steals race through a single CAS.
fn pack(lo: usize, hi: usize) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xffff_ffff) as usize)
}

/// Owner side: claim the front index of `r`, or `None` if the range is
/// empty.
fn take_front(r: &AtomicU64) -> Option<usize> {
    let mut cur = r.load(Ordering::Acquire);
    loop {
        let (lo, hi) = unpack(cur);
        if lo >= hi {
            return None;
        }
        match r.compare_exchange_weak(cur, pack(lo + 1, hi), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Some(lo),
            Err(seen) => cur = seen,
        }
    }
}

/// Thief side: claim the back index of `r`, or `None` if the range is
/// empty.
fn steal_back(r: &AtomicU64) -> Option<usize> {
    let mut cur = r.load(Ordering::Acquire);
    loop {
        let (lo, hi) = unpack(cur);
        if lo >= hi {
            return None;
        }
        match r.compare_exchange_weak(cur, pack(lo, hi - 1), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Some(hi - 1),
            Err(seen) => cur = seen,
        }
    }
}

/// Scan the other workers' ranges (round-robin from `w + 1`) and steal one
/// item from the first non-empty one. Items are never re-queued, so one
/// full scan that finds every range empty means the sweep is drained.
fn steal(ranges: &[AtomicU64], w: usize) -> Option<usize> {
    let k = ranges.len();
    (1..k).find_map(|off| steal_back(&ranges[(w + off) % k]))
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Delegates to [`Pool::current`] — up to one worker per available core
/// (capped by the item count), unless overridden by [`set_sweep_jobs`].
///
/// ```
/// let squares = parsched_analysis::parallel_map(vec![1, 2, 3], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    Pool::current().map(items, f)
}

/// One audited in-memory run on donated [`EngineBuffers`]; returns the
/// outcome (or error) together with buffers ready for the next run.
///
/// This is the sweep workers' inner loop: a worker created by
/// [`Pool::map_with`] with `EngineBuffers::new` as `init` recycles one
/// set of engine allocations across its whole share of the grid, keeping
/// the steady state of a sweep allocation-free (see `docs/PERF.md` §6).
/// On error the buffers died with the engine, so a fresh (empty) set is
/// returned — error paths are rare and not performance-relevant.
pub fn simulate_audited_reusing(
    bufs: EngineBuffers,
    instance: &Instance,
    policy: &mut dyn Policy,
    m: f64,
    audit: AuditLevel,
) -> (Result<RunOutcome, SimError>, EngineBuffers) {
    let mut source = StaticSource::new(instance);
    let mut obs = NullObserver;
    let engine = Engine::with_buffers(
        EngineConfig::new(m).with_audit(audit),
        policy,
        &mut source,
        &mut obs,
        bufs,
    );
    match engine.run_reusing() {
        Ok((outcome, bufs)) => (Ok(outcome), bufs),
        Err(e) => (Err(e), EngineBuffers::new()),
    }
}

/// Sweeps streaming simulations over a parameter grid in parallel,
/// preserving input order.
///
/// `make` maps each grid point to a boxed `(source, policy, m)` triple —
/// sources and policies are stateful, so each run gets fresh ones. Every
/// run uses the engine's memory-bounded streaming path
/// ([`parsched_sim::simulate_streaming_audited`]), so the sweep's resident
/// footprint is `workers × O(peak alive)` rather than `workers × O(n)` —
/// the difference between feasible and not for multi-million-job grids.
///
/// ```
/// use parsched_analysis::streaming_sweep;
/// use parsched_sim::{AuditLevel, EquiSplit};
/// use parsched_workloads::{GreedyTrap, TrapStreamSource};
///
/// let outcomes = streaming_sweep(vec![4usize, 8], AuditLevel::Final, |&m| {
///     let trap = GreedyTrap::new(m, 0.5).with_stream_duration(8.0);
///     (Box::new(TrapStreamSource::new(trap)) as _,
///      Box::new(EquiSplit::new()) as _,
///      m as f64)
/// });
/// assert!(outcomes.iter().all(|o| o.as_ref().unwrap().audit.as_ref().unwrap().final_checked));
/// ```
pub fn streaming_sweep<T, F>(
    points: Vec<T>,
    audit: AuditLevel,
    make: F,
) -> Vec<Result<StreamingOutcome, SimError>>
where
    T: Send,
    F: Fn(&T) -> (Box<dyn ArrivalSource + Send>, Box<dyn Policy + Send>, f64) + Sync,
{
    parallel_map(points, |p| {
        let (mut source, mut policy, m) = make(&p);
        simulate_streaming_audited(source.as_mut(), policy.as_mut(), m, audit)
    })
}

/// The Cartesian product of two parameter slices, row-major — the common
/// shape of a two-axis sweep grid.
pub fn grid2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(items, |x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..257).collect::<Vec<_>>(), |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_fast_path() {
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn pool_output_matches_serial_bit_for_bit() {
        // Float results compared by bits: the pool must be invisible in
        // the output no matter the worker count.
        let items: Vec<f64> = (0..533).map(|i| 0.1 + f64::from(i) * 0.37).collect();
        let f = |x: f64| (x.sin() * x.sqrt()).ln_1p();
        let reference: Vec<u64> = Pool::new(1)
            .map(items.clone(), f)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for jobs in [2, 3, 4, 8] {
            let got: Vec<u64> = Pool::new(jobs)
                .map(items.clone(), f)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn map_with_initializes_one_state_per_worker() {
        let inits = AtomicUsize::new(0);
        let pool = Pool::new(3);
        let out = pool.map_with(
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            (0..100).collect::<Vec<usize>>(),
            |seen, x| {
                *seen += 1;
                x + *seen - *seen // result independent of worker state
            },
        );
        assert_eq!(out, (0..100).collect::<Vec<usize>>());
        let created = inits.load(Ordering::Relaxed);
        assert!(
            (1..=3).contains(&created),
            "expected ≤ 3 worker states, got {created}"
        );
    }

    #[test]
    fn stealing_balances_skewed_costs() {
        // Front-loaded costs: with contiguous partitioning the first
        // worker owns all the slow items; stealing keeps the others busy.
        // The test asserts correctness (exactly-once, in order) — wall
        // clock on 1-core CI says nothing.
        let items: Vec<u64> = (0..64).collect();
        let out = Pool::new(4).map(items, |x| {
            if x < 16 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x * x
        });
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn set_sweep_jobs_overrides_current_pool() {
        // Serialized via the global: restore before returning.
        let before = sweep_jobs();
        set_sweep_jobs(1);
        assert_eq!(Pool::current().workers_for(100), 1);
        set_sweep_jobs(5);
        assert_eq!(Pool::current().workers_for(100), 5);
        assert_eq!(Pool::current().workers_for(3), 3);
        set_sweep_jobs(before);
    }

    #[test]
    fn simulate_audited_reusing_matches_fresh_runs() {
        use parsched::PolicyKind;
        use parsched_sim::simulate_audited;
        use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};
        let sizes = SizeDist::LogUniform { p: 16.0 };
        let inst = PoissonWorkload {
            n: 400,
            rate: PoissonWorkload::rate_for_load(0.9, 4.0, &sizes),
            sizes,
            alphas: AlphaDist::Fixed(0.5),
            seed: 77,
        }
        .generate()
        .expect("workload");
        let mut bufs = EngineBuffers::new();
        for _ in 0..3 {
            let mut policy = PolicyKind::IntermediateSrpt.build();
            let (out, next) =
                simulate_audited_reusing(bufs, &inst, policy.as_mut(), 4.0, AuditLevel::Final);
            bufs = next;
            let reused = out.expect("reusing run");
            let fresh = simulate_audited(
                &inst,
                PolicyKind::IntermediateSrpt.build().as_mut(),
                4.0,
                AuditLevel::Final,
            )
            .expect("fresh run");
            assert_eq!(
                reused.metrics.total_flow.to_bits(),
                fresh.metrics.total_flow.to_bits()
            );
            assert_eq!(reused.metrics.events, fresh.metrics.events);
        }
    }

    #[test]
    fn actually_uses_multiple_threads_for_blocking_work() {
        // 8 tasks that each sleep 20ms: serial would take ≥160ms.
        let start = std::time::Instant::now();
        parallel_map((0..8).collect::<Vec<_>>(), |_| {
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
        let elapsed = start.elapsed();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if workers >= 4 {
            assert!(
                elapsed < std::time::Duration::from_millis(150),
                "took {elapsed:?} on {workers} workers"
            );
        }
    }

    #[test]
    fn streaming_sweep_matches_in_memory_runs_in_order() {
        use parsched_sim::{simulate, EquiSplit};
        use parsched_workloads::{GreedyTrap, TrapStreamSource};
        let ms = vec![4usize, 8, 16];
        let outcomes = streaming_sweep(ms.clone(), AuditLevel::Final, |&m| {
            let trap = GreedyTrap::new(m, 0.5).with_stream_duration(4.0);
            (
                Box::new(TrapStreamSource::new(trap)) as _,
                Box::new(EquiSplit::new()) as _,
                m as f64,
            )
        });
        assert_eq!(outcomes.len(), ms.len());
        for (&m, st) in ms.iter().zip(&outcomes) {
            let st = st.as_ref().expect("sweep run succeeds");
            let trap = GreedyTrap::new(m, 0.5).with_stream_duration(4.0);
            let mem = simulate(&trap.instance().unwrap(), &mut EquiSplit::new(), m as f64).unwrap();
            assert_eq!(mem.metrics, st.metrics, "m={m}");
            assert!(st.audit.as_ref().is_some_and(|a| a.final_checked));
        }
    }

    #[test]
    fn grid2_is_row_major() {
        let g = grid2(&[1, 2], &["a", "b", "c"]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, "a"));
        assert_eq!(g[2], (1, "c"));
        assert_eq!(g[3], (2, "a"));
    }
}
