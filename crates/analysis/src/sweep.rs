//! Deterministic parallel parameter sweeps.
//!
//! Every experiment is a grid of independent simulation runs; this module
//! fans them out over std channels to scoped worker threads and returns
//! results **in input order**, so sweeps are reproducible regardless of
//! scheduling. (rayon is not in the approved offline crate set; two
//! channels + `std::thread::scope` are all these embarrassingly parallel
//! sweeps need.)

use std::sync::mpsc;
use std::sync::Mutex;

use parsched_sim::{
    simulate_streaming_audited, ArrivalSource, AuditLevel, Policy, SimError, StreamingOutcome,
};

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Uses up to `std::thread::available_parallelism()` workers (capped by
/// the item count). Workers pull `(index, item)` jobs from a shared queue
/// and send `(index, result)` back over a channel; the results vector is
/// assembled once on the caller's thread, so no lock is held around `f`.
/// Panics in `f` propagate after the scope joins.
///
/// ```
/// let squares = parsched_analysis::parallel_map(vec![1, 2, 3], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Job queue: std mpsc receivers are single-consumer, so workers share
    // the receiving end behind a mutex held only for the dequeue itself.
    let (job_tx, job_rx) = mpsc::channel::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        job_tx.send(pair).expect("queue is open");
    }
    drop(job_tx);
    let job_rx = Mutex::new(job_rx);
    let next_job = || job_rx.lock().expect("job queue lock").recv().ok();

    let (result_tx, result_rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let next_job = &next_job;
        for _ in 0..workers {
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Some((i, item)) = next_job() {
                    let r = f(item);
                    result_tx.send((i, r)).expect("collector is open");
                }
            });
        }
        drop(result_tx);
        // Collect on the calling thread while workers run; ends when the
        // last worker drops its sender clone.
        for (i, r) in result_rx.iter() {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

/// Sweeps streaming simulations over a parameter grid in parallel,
/// preserving input order.
///
/// `make` maps each grid point to a boxed `(source, policy, m)` triple —
/// sources and policies are stateful, so each run gets fresh ones. Every
/// run uses the engine's memory-bounded streaming path
/// ([`parsched_sim::simulate_streaming_audited`]), so the sweep's resident
/// footprint is `workers × O(peak alive)` rather than `workers × O(n)` —
/// the difference between feasible and not for multi-million-job grids.
///
/// ```
/// use parsched_analysis::streaming_sweep;
/// use parsched_sim::{AuditLevel, EquiSplit};
/// use parsched_workloads::{GreedyTrap, TrapStreamSource};
///
/// let outcomes = streaming_sweep(vec![4usize, 8], AuditLevel::Final, |&m| {
///     let trap = GreedyTrap::new(m, 0.5).with_stream_duration(8.0);
///     (Box::new(TrapStreamSource::new(trap)) as _,
///      Box::new(EquiSplit::new()) as _,
///      m as f64)
/// });
/// assert!(outcomes.iter().all(|o| o.as_ref().unwrap().audit.as_ref().unwrap().final_checked));
/// ```
pub fn streaming_sweep<T, F>(
    points: Vec<T>,
    audit: AuditLevel,
    make: F,
) -> Vec<Result<StreamingOutcome, SimError>>
where
    T: Send,
    F: Fn(&T) -> (Box<dyn ArrivalSource + Send>, Box<dyn Policy + Send>, f64) + Sync,
{
    parallel_map(points, |p| {
        let (mut source, mut policy, m) = make(&p);
        simulate_streaming_audited(source.as_mut(), policy.as_mut(), m, audit)
    })
}

/// The Cartesian product of two parameter slices, row-major — the common
/// shape of a two-axis sweep grid.
pub fn grid2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(items, |x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..257).collect::<Vec<_>>(), |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_fast_path() {
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn actually_uses_multiple_threads_for_blocking_work() {
        // 8 tasks that each sleep 20ms: serial would take ≥160ms.
        let start = std::time::Instant::now();
        parallel_map((0..8).collect::<Vec<_>>(), |_| {
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
        let elapsed = start.elapsed();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if workers >= 4 {
            assert!(
                elapsed < std::time::Duration::from_millis(150),
                "took {elapsed:?} on {workers} workers"
            );
        }
    }

    #[test]
    fn streaming_sweep_matches_in_memory_runs_in_order() {
        use parsched_sim::{simulate, EquiSplit};
        use parsched_workloads::{GreedyTrap, TrapStreamSource};
        let ms = vec![4usize, 8, 16];
        let outcomes = streaming_sweep(ms.clone(), AuditLevel::Final, |&m| {
            let trap = GreedyTrap::new(m, 0.5).with_stream_duration(4.0);
            (
                Box::new(TrapStreamSource::new(trap)) as _,
                Box::new(EquiSplit::new()) as _,
                m as f64,
            )
        });
        assert_eq!(outcomes.len(), ms.len());
        for (&m, st) in ms.iter().zip(&outcomes) {
            let st = st.as_ref().expect("sweep run succeeds");
            let trap = GreedyTrap::new(m, 0.5).with_stream_duration(4.0);
            let mem = simulate(&trap.instance().unwrap(), &mut EquiSplit::new(), m as f64).unwrap();
            assert_eq!(mem.metrics, st.metrics, "m={m}");
            assert!(st.audit.as_ref().is_some_and(|a| a.final_checked));
        }
    }

    #[test]
    fn grid2_is_row_major() {
        let g = grid2(&[1, 2], &["a", "b", "c"]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, "a"));
        assert_eq!(g[2], (1, "c"));
        assert_eq!(g[3], (2, "a"));
    }
}
