//! Pointwise checkers for Lemma 1, Lemma 4, and Lemma 5.
//!
//! All three lemmas hold for the algorithm's schedule against **any**
//! feasible reference schedule — their proofs only use that the reference
//! processes at most `m` volume per unit time — so we check them against
//! every policy we can run, not just a hypothetical optimum:
//!
//! * **Lemma 4**: at overloaded times, `ΔV_{≤k}(t) ≤ m·2^{k+1}` for every
//!   class `k` (volume in classes `≤ k`, where class `k` holds remaining
//!   lengths in `[2^k, 2^{k+1})` and class `−1` holds lengths below 1).
//! * **Lemma 5**: `δ^A_{≥0,≤k_max}(t) ≤ m(k_max + 2) + 2δ^OPT_{≤k_max}(t)`.
//! * **Lemma 1**: `|A(t)| ≤ m(3 + log P) + 2|OPT(t)|` (Lemma 5 plus the
//!   observation that class `−1` holds at most `m` of the algorithm's
//!   jobs at overloaded times).

use parsched::theory;
use parsched_sim::{class_index, AliveSnapshot};

/// The measurements from one overloaded sample point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LemmaSample {
    /// Whether the algorithm was overloaded (`|A(t)| ≥ m`) — the lemmas
    /// only claim anything there.
    pub overloaded: bool,
    /// `max_k (ΔV_{≤k} − m·2^{k+1})` — Lemma 4 slack; `≤ 0` means it holds.
    pub lemma4_slack: f64,
    /// `δ^A_{≥0} − (m(k_max+2) + 2δ^OPT)` — Lemma 5 slack.
    pub lemma5_slack: f64,
    /// `|A| − (m(3+log₂P) + 2|OPT|)` — Lemma 1 slack.
    pub lemma1_slack: f64,
    /// Per class `k`: `ΔV_{≤k}` (one entry per `k ∈ [−1, k_max]`, in
    /// order) — lets callers see how close each class comes to its
    /// `m·2^{k+1}` ceiling.
    pub dv_prefix_by_class: Vec<(i32, f64)>,
}

/// Aggregated worst-case slacks over a whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LemmaReport {
    /// Number of overloaded samples checked.
    pub overloaded_samples: usize,
    /// Worst Lemma 4 slack (≤ 0 ⇒ lemma held everywhere).
    pub lemma4_worst: f64,
    /// Worst Lemma 5 slack.
    pub lemma5_worst: f64,
    /// Worst Lemma 1 slack.
    pub lemma1_worst: f64,
    /// Per class `k`: the largest `ΔV_{≤k}` observed at any overloaded
    /// sample (compare against Lemma 4's ceiling `m·2^{k+1}`).
    pub dv_peak_by_class: std::collections::BTreeMap<i32, f64>,
}

impl Default for LemmaReport {
    fn default() -> Self {
        Self {
            overloaded_samples: 0,
            lemma4_worst: f64::NEG_INFINITY,
            lemma5_worst: f64::NEG_INFINITY,
            lemma1_worst: f64::NEG_INFINITY,
            dv_peak_by_class: std::collections::BTreeMap::new(),
        }
    }
}

impl LemmaReport {
    /// Folds one sample into the aggregate.
    pub fn absorb(&mut self, sample: &LemmaSample) {
        if !sample.overloaded {
            return;
        }
        self.overloaded_samples += 1;
        self.lemma4_worst = self.lemma4_worst.max(sample.lemma4_slack);
        self.lemma5_worst = self.lemma5_worst.max(sample.lemma5_slack);
        self.lemma1_worst = self.lemma1_worst.max(sample.lemma1_slack);
        for &(k, dv) in &sample.dv_prefix_by_class {
            let e = self.dv_peak_by_class.entry(k).or_insert(f64::NEG_INFINITY);
            *e = e.max(dv);
        }
    }

    /// Lemma 4's utilization per class: `(k, peak ΔV_{≤k} / (m·2^{k+1}))`,
    /// ascending in `k`. Values ≤ 1 everywhere ⇔ the lemma held; values
    /// near 1 show where the bound is nearly tight.
    pub fn lemma4_utilization(&self, m: f64) -> Vec<(i32, f64)> {
        self.dv_peak_by_class
            .iter()
            .map(|(&k, &dv)| (k, dv / parsched::theory::lemma4_rhs(m, k)))
            .collect()
    }

    /// Lemma 1 held at every overloaded sample.
    pub fn lemma1_ok(&self) -> bool {
        self.overloaded_samples == 0 || self.lemma1_worst <= 1e-6
    }

    /// Lemma 4 held at every overloaded sample.
    pub fn lemma4_ok(&self) -> bool {
        self.overloaded_samples == 0 || self.lemma4_worst <= 1e-6
    }

    /// Lemma 5 held at every overloaded sample.
    pub fn lemma5_ok(&self) -> bool {
        self.overloaded_samples == 0 || self.lemma5_worst <= 1e-6
    }
}

/// Evaluates all three lemmas at one instant from both schedules' alive
/// snapshots. `p` is the instance's size ratio `P` (sizes assumed
/// normalized to `[1, P]`, as in the paper).
pub fn check_sample(
    alg: &[AliveSnapshot],
    reference: &[AliveSnapshot],
    m: f64,
    p: f64,
) -> LemmaSample {
    let m_int = m.round().max(1.0) as usize;
    let overloaded = alg.len() >= m_int;
    if !overloaded {
        return LemmaSample {
            overloaded: false,
            ..LemmaSample::default()
        };
    }
    let kmax = theory::k_max(p);
    // Volumes per class for ΔV_{≤k}; snapshots may carry remainders a hair
    // above P (they can't: remaining ≤ size ≤ P), clamp classes into range.
    let class_of = |remaining: f64| class_index(remaining.max(1e-12)).clamp(-1, kmax);
    let mut dv_by_class = vec![0.0f64; (kmax + 2) as usize]; // index k+1
    for j in alg {
        dv_by_class[(class_of(j.remaining) + 1) as usize] += j.remaining;
    }
    for j in reference {
        dv_by_class[(class_of(j.remaining) + 1) as usize] -= j.remaining;
    }
    let mut lemma4_slack = f64::NEG_INFINITY;
    let mut dv_prefix_by_class = Vec::with_capacity((kmax + 2) as usize);
    let mut prefix = 0.0;
    for k in -1..=kmax {
        prefix += dv_by_class[(k + 1) as usize];
        dv_prefix_by_class.push((k, prefix));
        lemma4_slack = lemma4_slack.max(prefix - theory::lemma4_rhs(m, k));
    }
    // Lemma 5: algorithm jobs in classes ≥ 0 vs all reference jobs.
    let alg_ge0 = alg.iter().filter(|j| class_of(j.remaining) >= 0).count();
    let lemma5_slack = alg_ge0 as f64 - theory::lemma5_rhs(m, p, reference.len());
    // Lemma 1: all algorithm jobs.
    let lemma1_slack = alg.len() as f64 - theory::lemma1_rhs(m, p, reference.len());
    LemmaSample {
        overloaded,
        lemma4_slack,
        lemma5_slack,
        lemma1_slack,
        dv_prefix_by_class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::JobId;
    use parsched_speedup::Curve;

    fn snap(id: u64, remaining: f64) -> AliveSnapshot {
        AliveSnapshot {
            id: JobId(id),
            release: id as f64,
            size: remaining.max(1.0),
            remaining,
            curve: Curve::power(0.5),
        }
    }

    #[test]
    fn underloaded_samples_are_skipped() {
        let s = check_sample(&[snap(0, 1.0)], &[], 4.0, 8.0);
        assert!(!s.overloaded);
        let mut rep = LemmaReport::default();
        rep.absorb(&s);
        assert_eq!(rep.overloaded_samples, 0);
        assert!(rep.lemma1_ok() && rep.lemma4_ok() && rep.lemma5_ok());
    }

    #[test]
    fn hand_computed_slacks() {
        // m = 2, P = 8 (k_max = 3). Algorithm holds 4 jobs with remaining
        // 0.5, 1, 2, 4; reference empty.
        let alg = vec![snap(0, 0.5), snap(1, 1.0), snap(2, 2.0), snap(3, 4.0)];
        let s = check_sample(&alg, &[], 2.0, 8.0);
        assert!(s.overloaded);
        // Lemma 1: 4 − 2(3+3) − 0 = −8.
        assert!((s.lemma1_slack - (4.0 - 12.0)).abs() < 1e-9);
        // Lemma 5: jobs in classes ≥0 = 3; rhs = 2·(3+2) = 10 → −7.
        assert!((s.lemma5_slack - (3.0 - 10.0)).abs() < 1e-9);
        // Lemma 4 prefix sums: k=−1: 0.5 − 2·1 = −1.5; k=0: 1.5 − 4 = −2.5;
        // k=1: 3.5 − 8; k=2: 7.5 − 16; k=3: 7.5 − 32. Max = −1.5.
        assert!((s.lemma4_slack - (-1.5)).abs() < 1e-9);
    }

    #[test]
    fn violation_is_detected() {
        // Pathological state (not reachable by Intermediate-SRPT): m = 1,
        // P = 2, 20 algorithm jobs of remaining 1.5, empty reference.
        let alg: Vec<_> = (0..20).map(|i| snap(i, 1.5)).collect();
        let s = check_sample(&alg, &[], 1.0, 2.0);
        // Lemma 1 rhs = 1·(3+1) = 4 < 20 → positive slack.
        assert!(s.lemma1_slack > 0.0);
        // Lemma 4 at k=0: ΔV = 30 > 1·2 → violated.
        assert!(s.lemma4_slack > 0.0);
        let mut rep = LemmaReport::default();
        rep.absorb(&s);
        assert!(!rep.lemma1_ok() && !rep.lemma4_ok());
    }

    #[test]
    fn per_class_utilization_is_tracked() {
        // m = 2, P = 8. Algorithm: remaining 2, 2, 4, 4; reference empty.
        let alg = vec![snap(0, 2.0), snap(1, 2.0), snap(2, 4.0), snap(3, 4.0)];
        let s = check_sample(&alg, &[], 2.0, 8.0);
        let mut rep = LemmaReport::default();
        rep.absorb(&s);
        // ΔV_{≤1} = 4 vs ceiling m·2² = 8 → utilization 0.5;
        // ΔV_{≤2} = 12 vs m·2³ = 16 → 0.75.
        let util = rep.lemma4_utilization(2.0);
        let at = |k: i32| util.iter().find(|&&(kk, _)| kk == k).map(|&(_, u)| u);
        assert!((at(1).expect("class 1") - 0.5).abs() < 1e-9);
        assert!((at(2).expect("class 2") - 0.75).abs() < 1e-9);
        // Utilization ≤ 1 everywhere ⇔ Lemma 4 held.
        assert!(util.iter().all(|&(_, u)| u <= 1.0));
    }

    #[test]
    fn reference_jobs_relax_the_bounds() {
        let alg: Vec<_> = (0..6).map(|i| snap(i, 2.0)).collect();
        let without = check_sample(&alg, &[], 2.0, 8.0);
        let reference: Vec<_> = (10..13).map(|i| snap(i, 2.0)).collect();
        let with = check_sample(&alg, &reference, 2.0, 8.0);
        assert!(with.lemma1_slack < without.lemma1_slack);
        assert!(with.lemma5_slack < without.lemma5_slack);
        assert!(with.lemma4_slack < without.lemma4_slack);
    }
}
