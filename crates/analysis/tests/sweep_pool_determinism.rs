//! The sweep pool's ordering guarantee, end to end: running an experiment
//! through the work-stealing pool must produce output **byte-identical**
//! to the serial path — tables, notes, and verdict. CI runs this in the
//! audit job (see `.github/workflows/ci.yml`).
//!
//! The worker count is process-global (`set_sweep_jobs`), so the
//! comparisons live in one `#[test]` to avoid harness-thread interleaving.

use parsched_analysis::experiments::{run, ExpOptions, ExpResult};
use parsched_analysis::set_sweep_jobs;

/// Everything an experiment emits, flattened to one comparable string.
fn render(result: &ExpResult) -> String {
    let mut out = String::new();
    for table in &result.tables {
        out.push_str(&table.render());
        out.push_str(&table.to_markdown());
        out.push_str(&table.to_csv());
    }
    for note in &result.notes {
        out.push_str(note);
        out.push('\n');
    }
    out.push_str(&format!("pass={}\n", result.pass));
    out
}

#[test]
fn pooled_experiments_match_serial_byte_for_byte() {
    let opts = ExpOptions::quick();
    for id in ["t1", "t2", "t3"] {
        set_sweep_jobs(1);
        let serial = run(id, &opts).expect("known experiment id");
        for jobs in [2, 4, 8] {
            set_sweep_jobs(jobs);
            let pooled = run(id, &opts).expect("known experiment id");
            assert_eq!(
                render(&pooled),
                render(&serial),
                "{id}: pool with {jobs} workers diverged from serial output"
            );
        }
    }
    set_sweep_jobs(0);
}

/// Everything an adversary search emits, flattened to one comparable
/// string: elite corpus documents (the bytes `--emit-corpus` writes) plus
/// the bit-exact best-ratio trajectory.
fn render_search(out: &parsched_adversary::SearchOutcome, cfg_label: &str) -> String {
    use parsched_adversary::{CorpusEntry, KIND_HARD};
    let mut s = String::new();
    for (rank, e) in out.elites.iter().enumerate() {
        let instance = e.genome.materialize(4.0).expect("elite rematerializes");
        let entry = CorpusEntry {
            kind: KIND_HARD.to_string(),
            policy: cfg_label.to_string(),
            m: 4.0,
            search_seed: 0,
            budget: 0,
            ratio: e.ratio,
            flow: e.flow,
            lb: e.lb,
            lb_kind: e.lb_kind.name().to_string(),
            engine_commit: "test".to_string(),
            genome: e.genome.provenance(),
            jobs: instance.jobs().to_vec(),
        };
        s.push_str(&entry.file_name(rank));
        s.push('\n');
        s.push_str(&entry.to_json());
    }
    for r in &out.trajectory {
        s.push_str(&format!("{:016x}\n", r.to_bits()));
    }
    s.push_str(&format!(
        "evals={} failures={}\n",
        out.evals,
        out.failures.len()
    ));
    s
}

/// Satellite of the adversary-search PR: the search rides on the same
/// pool, so the same guarantee must hold one level up — identical
/// `--seed`/`--budget` produce byte-identical corpus output and best-ratio
/// trajectory whatever `--jobs` is.
#[test]
fn adversary_search_is_jobs_invariant_byte_for_byte() {
    use parsched::PolicyKind;
    use parsched_adversary::{run_search, SearchConfig};
    for (token, policy) in [
        ("isrpt", PolicyKind::IntermediateSrpt),
        ("equi", PolicyKind::Equi),
    ] {
        let mut cfg = SearchConfig::new(policy, 7, 64);
        cfg.jobs = 1;
        let serial = render_search(&run_search(&cfg), token);
        for jobs in [2, 4] {
            cfg.jobs = jobs;
            let pooled = render_search(&run_search(&cfg), token);
            assert_eq!(
                pooled, serial,
                "{token}: search with {jobs} workers diverged from serial"
            );
        }
    }
}
