//! The sweep pool's ordering guarantee, end to end: running an experiment
//! through the work-stealing pool must produce output **byte-identical**
//! to the serial path — tables, notes, and verdict. CI runs this in the
//! audit job (see `.github/workflows/ci.yml`).
//!
//! The worker count is process-global (`set_sweep_jobs`), so the
//! comparisons live in one `#[test]` to avoid harness-thread interleaving.

use parsched_analysis::experiments::{run, ExpOptions, ExpResult};
use parsched_analysis::set_sweep_jobs;

/// Everything an experiment emits, flattened to one comparable string.
fn render(result: &ExpResult) -> String {
    let mut out = String::new();
    for table in &result.tables {
        out.push_str(&table.render());
        out.push_str(&table.to_markdown());
        out.push_str(&table.to_csv());
    }
    for note in &result.notes {
        out.push_str(note);
        out.push('\n');
    }
    out.push_str(&format!("pass={}\n", result.pass));
    out
}

#[test]
fn pooled_experiments_match_serial_byte_for_byte() {
    let opts = ExpOptions::quick();
    for id in ["t1", "t2", "t3"] {
        set_sweep_jobs(1);
        let serial = run(id, &opts).expect("known experiment id");
        for jobs in [2, 4, 8] {
            set_sweep_jobs(jobs);
            let pooled = run(id, &opts).expect("known experiment id");
            assert_eq!(
                render(&pooled),
                render(&serial),
                "{id}: pool with {jobs} workers diverged from serial output"
            );
        }
    }
    set_sweep_jobs(0);
}
